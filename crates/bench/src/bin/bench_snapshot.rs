//! `bench-snapshot` — tracked balls/sec measurements for the throw
//! kernel, and requests/sec for the cluster simulator.
//!
//! Criterion benches are great for interactive A/B work but their output
//! is ephemeral; this runner writes machine-readable snapshots so the
//! repo can track its throughput trajectory across PRs:
//!
//! * `BENCH_throw.json` — the engine's batched throw path over the grid
//!   `n ∈ {1e3, 1e5, 1e6} × d ∈ {1, 2, 4} × {uniform, two-class, Zipf}`
//!   capacities, balls/sec per cell next to the recorded pre-kernel
//!   baseline;
//! * `BENCH_cluster.json` — end-to-end requests/sec of the `bnb-cluster`
//!   discrete-event simulator over the registered scenario workloads,
//!   next to the baseline recorded when the subsystem landed, plus the
//!   sharded-scale cell (the 131072-server `giant` scenario on the
//!   space-sharded engine, 1 vs 4 workers, host core count recorded);
//! * `BENCH_router.json` — routed placements/sec of the embeddable
//!   `bnb-router` data plane under contention: 1–32 cloned
//!   `RouterHandle`s routing d-choice d = 2 against one shared
//!   epoch-published `FleetView`, next to the bare in-simulator
//!   placement path measured in the same run.
//!
//! ```text
//! bench-snapshot                       # full grids -> ./BENCH_throw.json
//!                                      #             + ./BENCH_cluster.json
//!                                      #             + ./BENCH_router.json
//! bench-snapshot --out t.json --cluster-out c.json --router-out r.json
//! bench-snapshot --check               # tiny grids, CI smoke (fails if a
//!                                      # file cannot be produced)
//! ```

use bnb_cluster::{find_scenario, SimBuilder};
use bnb_core::prelude::*;
use bnb_distributions::Xoshiro256PlusPlus;
use bnb_router::{LoadView, Membership, PlacementSpec, Router, RouterBuilder};
use bnb_telemetry::Registry;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Throughput of one grid cell.
struct Cell {
    scenario: &'static str,
    n: usize,
    d: usize,
    balls_thrown: u64,
    elapsed: Duration,
    balls_per_sec: f64,
    baseline_balls_per_sec: Option<f64>,
}

/// Pre-kernel baseline, in balls/sec, measured with this same runner at
/// the seed engine (commit `ce0cd29`, scalar `throw()` loop with the
/// two-RNG-call float alias sampler) on the single-core CI container,
/// averaged over two full-grid runs. `(scenario, n, d, balls_per_sec)`.
const SEED_BASELINE: &[(&str, usize, usize, f64)] = &[
    ("uniform", 1_000, 1, 8.054e7),
    ("uniform", 1_000, 2, 3.811e7),
    ("uniform", 1_000, 4, 1.794e7),
    ("uniform", 100_000, 1, 3.838e7),
    ("uniform", 100_000, 2, 1.482e7),
    ("uniform", 100_000, 4, 7.916e6),
    ("uniform", 1_000_000, 1, 1.574e7),
    ("uniform", 1_000_000, 2, 6.468e6),
    ("uniform", 1_000_000, 4, 3.186e6),
    ("two_class", 1_000, 1, 6.259e7),
    ("two_class", 1_000, 2, 2.918e7),
    ("two_class", 1_000, 4, 1.383e7),
    ("two_class", 100_000, 1, 2.829e7),
    ("two_class", 100_000, 2, 1.303e7),
    ("two_class", 100_000, 4, 7.070e6),
    ("two_class", 1_000_000, 1, 1.146e7),
    ("two_class", 1_000_000, 2, 4.557e6),
    ("two_class", 1_000_000, 4, 2.473e6),
    ("zipf", 1_000, 1, 5.745e7),
    ("zipf", 1_000, 2, 2.516e7),
    ("zipf", 1_000, 4, 1.240e7),
    ("zipf", 100_000, 1, 2.440e7),
    ("zipf", 100_000, 2, 1.280e7),
    ("zipf", 100_000, 4, 6.392e6),
    ("zipf", 1_000_000, 1, 9.070e6),
    ("zipf", 1_000_000, 2, 4.567e6),
    ("zipf", 1_000_000, 4, 2.571e6),
];

fn baseline_for(scenario: &str, n: usize, d: usize) -> Option<f64> {
    SEED_BASELINE
        .iter()
        .find(|&&(s, bn, bd, _)| s == scenario && bn == n && bd == d)
        .map(|&(_, _, _, bps)| bps)
}

/// Requests/sec of one cluster-simulator scenario.
struct ClusterCell {
    scenario: &'static str,
    requests_per_iter: u64,
    total_requests: u64,
    elapsed: Duration,
    req_per_sec: f64,
    baseline_req_per_sec: Option<f64>,
}

/// End-to-end cluster baseline, in requests/sec: the PR-3 cluster
/// subsystem (commit `40c5325` — binary heap, per-event RNG draws,
/// inverse-CDF exponentials) **rebuilt and re-measured on the current
/// bench host**, interleaved with HEAD runs in the same windows, under
/// the same best-single-run estimator. `(scenario, req_per_sec)`.
///
/// Re-recorded (again) at the fused-hot-loop PR, this time for
/// machine comparability: the previous baselines were carried over
/// from snapshots taken on a *different, ~2× faster host*, so every
/// `speedup_vs_baseline` mixed machines and the shared-runner noise
/// swung the apparent ratio by 2× between runs of identical code.
/// Same-host, same-window, best-run measurement is the only ratio that
/// tracks the code rather than the hardware du jour; the measured
/// history of both protocols is kept in the README's cluster
/// trajectory table. `diurnal` landed with PR 4, so its baseline is
/// commit `3d05046` re-measured the same way.
const CLUSTER_BASELINE: &[(&str, f64)] = &[
    ("uniform", 5.839e6),
    ("two_class", 6.091e6),
    ("zipf", 5.706e6),
    ("flash_crowd", 5.283e6),
    ("diurnal", 6.249e6),
    ("churny_p2p", 4.533e6),
];

/// One-line provenance note embedded in the cluster snapshot (see
/// [`CLUSTER_BASELINE`]).
const CLUSTER_BASELINE_NOTE: &str = "baselines are the PR-3 subsystem (40c5325; diurnal: \
     3d05046 where it landed) rebuilt and re-measured on this bench host, interleaved \
     with HEAD under the best-single-run estimator -- same-host ratios, not the old \
     cross-machine ones";

/// Why the diurnal cell trails the stationary d-choice cells (embedded
/// in the snapshot so the number ships with its explanation). The
/// diurnal sampler now thins under a **piecewise-constant 32-segment
/// majorisation**: each period segment carries its tight local
/// envelope (crest-aware) and a per-segment squeeze floor, so
/// candidates propose at the local ceiling instead of the global peak
/// — off-crest segments no longer pay crest-rate rejection, and the
/// squeeze floor sits at `segment_min / segment_env` (near 1 for flat
/// segments), skipping the `sin` on most accepts. That took the cell
/// from ~1.2x to ~1.4x. The residual gap is structural: the cell's
/// baseline is global-peak thinning whose rejection step the
/// stationary baselines never had, and an accepted candidate near a
/// crest boundary still costs an extra gap draw when it overshoots its
/// segment.
const DIURNAL_NOTE: &str = "diurnal trails the stationary cells by construction: its baseline \
     does global-peak thinning (a rejection step the stationary baselines never had), so the \
     ratio starts handicapped. The 32-segment piecewise-constant majorisation (local crest-aware \
     envelopes + per-segment squeeze floors that skip sin on most accepts) lifted it ~1.2x -> \
     ~1.4x; what remains is boundary-overshoot redraws near crests, inherent to exact \
     segment-wise thinning";

/// Per-cell ratchets over the generic `--floor` ratio: the four
/// d-choice cells hold a multiple of their PR-3 baselines since the
/// fused-hot-loop work landed — raised to **0.6×** when the slot-keyed
/// lazy board took them past 1.8× (losing a third of a 2×-class win is
/// a structural regression, not noise) — while the generic-loop and
/// non-stationary cells keep the caller's ratio. The effective floor
/// for a cell is `max(--floor, ratchet)`.
const CELL_FLOOR: &[(&str, f64)] = &[
    ("uniform", 0.6),
    ("two_class", 0.6),
    ("zipf", 0.6),
    ("flash_crowd", 0.6),
];

fn cluster_baseline_for(scenario: &str) -> Option<f64> {
    CLUSTER_BASELINE
        .iter()
        .find(|&&(s, _)| s == scenario)
        .map(|&(_, rps)| rps)
}

/// JSON cell names use underscores; the scenario registry uses dashes.
fn cluster_scenario_id(cell_name: &str) -> String {
    cell_name.replace('_', "-")
}

/// Times one cluster scenario: repeated full runs of `requests` offered
/// requests (fresh simulator each iteration, construction included — the
/// figure tracks serving throughput end to end) until the budget
/// elapses.
///
/// The reported `req_per_sec` is the **best single run** within the
/// budget, not the mean — the `timeit` convention. These snapshots are
/// taken on shared hosts whose effective speed swings by 2× with
/// neighbour load on a sub-second scale; the mean of a 0.4 s window
/// measures the neighbours as much as the code, while the fastest run
/// is a stable estimate of the code's intrinsic speed (interference
/// only ever slows a run down). The committed baselines were re-taken
/// under this same estimator, on this same host class, so
/// `speedup_vs_baseline` compares like with like.
fn measure_cluster(cell_name: &'static str, requests: u64, budget: Duration) -> ClusterCell {
    let scenario = find_scenario(&cluster_scenario_id(cell_name))
        .unwrap_or_else(|| unreachable!("unknown cluster scenario {cell_name}"));
    let run = || {
        let metrics = SimBuilder::scenario(scenario, requests)
            .seed(bnb_bench::BENCH_SEED)
            .build()
            .run();
        assert_eq!(
            metrics.completed + metrics.dropped + metrics.orphaned,
            requests,
            "{cell_name}: lost requests during benching"
        );
    };
    // Warm-up run: page-faults, allocator growth, branch history.
    run();
    let mut total = 0u64;
    let mut best = 0.0f64;
    let start = Instant::now();
    loop {
        let run_start = Instant::now();
        run();
        let run_elapsed = run_start.elapsed();
        best = best.max(requests as f64 / run_elapsed.as_secs_f64());
        total += requests;
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed = start.elapsed();
    ClusterCell {
        scenario: cell_name,
        requests_per_iter: requests,
        total_requests: total,
        elapsed,
        req_per_sec: best,
        baseline_req_per_sec: cluster_baseline_for(cell_name),
    }
}

/// Telemetry overhead and scheduler internals of the `two_class` cell,
/// measured in one invocation.
struct TelemetryBlock {
    /// Best telemetry-off run (same estimator as the grid cells).
    off_req_per_sec: f64,
    /// Best telemetry-on run (spans + scheduler counters + traces).
    on_req_per_sec: f64,
    /// Scheduler-internals counters from the telemetry-on run — these
    /// are deterministic in `(scenario, seed)`, unlike the timings.
    /// The fused loop drives the slot-keyed `LazyBoard` since the
    /// lazy-deletion PR, so the fingerprint is its `lazy.*` counter
    /// family (the calendar counters read zero there).
    lazy_inserts: u64,
    lazy_stale_pops: u64,
    lazy_overwrites: u64,
    lazy_rebuilds: u64,
    bypasses: u64,
}

/// Times the `two_class` scenario with telemetry off and fully on,
/// strictly interleaved (off, on, off, on, …) inside one budget so
/// both sides sample the same neighbour-load weather, best run each —
/// the overhead ratio then tracks the instrumentation, not the host.
/// Also harvests the scheduler-internals counters from the final
/// telemetry-on run.
fn measure_telemetry(requests: u64, budget: Duration) -> TelemetryBlock {
    let scenario = find_scenario("two-class")
        .unwrap_or_else(|| unreachable!("two-class scenario missing from registry"));
    let registry = Registry::enabled();
    let run = |enable: bool| {
        let mut builder = SimBuilder::scenario(scenario, requests).seed(bnb_bench::BENCH_SEED);
        if enable {
            builder = builder.telemetry(&registry);
        }
        let mut sim = builder.build();
        let start = Instant::now();
        let metrics = sim.run();
        let elapsed = start.elapsed();
        assert_eq!(
            metrics.completed + metrics.dropped + metrics.orphaned,
            requests,
            "telemetry bench lost requests"
        );
        (requests as f64 / elapsed.as_secs_f64(), sim)
    };
    run(false);
    run(true);
    let start = Instant::now();
    let (mut best_off, _) = run(false);
    let (mut best_on, mut last_on) = run(true);
    while start.elapsed() < budget {
        let (off, _) = run(false);
        best_off = best_off.max(off);
        let (on, sim) = run(true);
        best_on = best_on.max(on);
        last_on = sim;
    }
    let snap = last_on.telemetry_snapshot();
    TelemetryBlock {
        off_req_per_sec: best_off,
        on_req_per_sec: best_on,
        lazy_inserts: snap.counter("lazy.ring_inserts").unwrap_or(0),
        lazy_stale_pops: snap.counter("lazy.stale_pops").unwrap_or(0),
        lazy_overwrites: snap.counter("lazy.overwrites").unwrap_or(0),
        lazy_rebuilds: snap.counter("lazy.rebuild_scans").unwrap_or(0),
        bypasses: snap.counter("sim.next_free_bypass").unwrap_or(0),
    }
}

/// The sharded-scale cell: the `giant` scenario (131072 servers) on
/// the space-sharded engine at 1 and 4 workers, interleaved.
struct ShardedBlock {
    /// Cores the bench host exposes (`available_parallelism`), recorded
    /// so the speedup figure ships with its hardware context.
    cores: usize,
    requests_per_iter: u64,
    w1_req_per_sec: f64,
    w4_req_per_sec: f64,
}

/// Context for the sharded cell's speedup figure (embedded in the
/// snapshot). Mirrors the router grid's single-core caveat.
const SHARDED_NOTE: &str = "the giant cell runs the 131072-server scenario on the space-sharded \
     engine at 1 and 4 workers, interleaved, best run each. On hosts with < 4 cores the ratio \
     is not parallel scaling (same single-core caveat as the router contention grid) — any \
     speedup measured there comes from space partitioning alone: four shards each walk a \
     quarter of the slot state, so the per-shard working set drops into cache. The >= 2x \
     gate arms only at cores >= 4, where real parallelism stacks on top of that locality win";

/// Times the `giant` scenario on the sharded engine at 1 and then 4
/// workers, strictly interleaved inside one budget (same
/// weather-sharing rationale as [`measure_telemetry`]), best single
/// run each. Fleet construction is included, as in every cluster cell.
fn measure_sharded(requests: u64, budget: Duration) -> ShardedBlock {
    let scenario = find_scenario("giant")
        .unwrap_or_else(|| unreachable!("giant scenario missing from registry"));
    let run = |workers: usize| {
        let start = Instant::now();
        let metrics = SimBuilder::scenario(scenario, requests)
            .seed(bnb_bench::BENCH_SEED)
            .workers(workers)
            .build()
            .run();
        let elapsed = start.elapsed();
        assert_eq!(
            metrics.completed + metrics.dropped + metrics.orphaned,
            requests,
            "sharded bench lost requests"
        );
        requests as f64 / elapsed.as_secs_f64()
    };
    run(1);
    run(4);
    let start = Instant::now();
    let mut best_w1 = run(1);
    let mut best_w4 = run(4);
    while start.elapsed() < budget {
        best_w1 = best_w1.max(run(1));
        best_w4 = best_w4.max(run(4));
    }
    ShardedBlock {
        cores: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        requests_per_iter: requests,
        w1_req_per_sec: best_w1,
        w4_req_per_sec: best_w4,
    }
}

/// Routed placements/sec of one router-contention cell.
struct RouterCell {
    threads: usize,
    routes_per_iter: u64,
    total_routes: u64,
    elapsed: Duration,
    routes_per_sec: f64,
}

/// Provenance note embedded in the router snapshot. `sim_path` is the
/// reference the `--floor` gate compares against (see
/// [`measure_sim_path`]).
const ROUTER_BASELINE_NOTE: &str = "sim_path is the bare PlacementEngine placing against a \
     plain dense load mirror -- the exact shape ClusterSim drives single-threaded -- \
     measured in the same run, same host, same estimator. The 1-thread routed cell pays \
     the embeddable surface (epoch refresh + Arc snapshot + atomic queue counters) and is \
     gated at --floor x sim_path. The bench host exposes a single core, so multi-thread \
     cells measure contention overhead under oversubscription, not parallel scaling";

/// The standard router-bench fleet: the two-class 64-server shape used
/// by the cluster grids (32 x speed 1, 32 x speed 8).
fn router_fleet_speeds() -> Vec<u64> {
    (0..64).map(|i| if i < 32 { 1 } else { 8 }).collect()
}

/// The in-simulator reference path: a bare `PlacementEngine` placing
/// against a plain (non-atomic) dense load mirror, single-threaded on
/// RNG stream 0 — no epoch pointer, no `Arc`, no atomics. This is the
/// hot call `ClusterSim` makes per request, so the gap between this
/// rate and the 1-thread routed cell is exactly the cost of the
/// embeddable `Router` surface.
fn measure_sim_path(routes: u64, budget: Duration) -> f64 {
    struct Mirror {
        loads: Vec<(u64, u64)>,
    }
    impl LoadView for Mirror {
        fn load(&self, slot: usize) -> (u64, u64) {
            self.loads[slot]
        }
    }
    let speeds = router_fleet_speeds();
    let membership = Membership::from_speeds(&speeds);
    let mut mirror = Mirror {
        loads: speeds.iter().map(|&s| (0u64, s)).collect(),
    };
    let mut engine = RouterBuilder::new(PlacementSpec::DChoice { d: 2 })
        .seed(bnb_bench::BENCH_SEED)
        .build_engine(&membership);
    let mut iter = || {
        let mut acc = 0usize;
        for _ in 0..routes {
            let target = engine.place(&mirror, 0);
            mirror.loads[target].0 += 1;
            mirror.loads[target].0 -= 1;
            acc ^= target;
        }
        std::hint::black_box(acc);
    };
    iter();
    let mut best = 0.0f64;
    let start = Instant::now();
    loop {
        let run_start = Instant::now();
        iter();
        best = best.max(routes as f64 / run_start.elapsed().as_secs_f64());
        if start.elapsed() >= budget {
            break;
        }
    }
    best
}

/// Times one contention cell: `threads` cloned `RouterHandle`s routing
/// concurrently against one shared `FleetView`, each route followed by
/// the join/depart pair an embedder records (so the atomic queue
/// counters are exercised, not just read). Best single iteration within
/// the budget, same estimator as the cluster grid.
fn measure_router(threads: usize, routes_per_thread: u64, budget: Duration) -> RouterCell {
    let speeds = router_fleet_speeds();
    let (_view, handle) = RouterBuilder::new(PlacementSpec::DChoice { d: 2 })
        .seed(bnb_bench::BENCH_SEED)
        .build(&speeds);
    let routes_per_iter = routes_per_thread * threads as u64;
    let iter = || {
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let mut h = handle.clone();
                    s.spawn(move || {
                        let mut acc = 0usize;
                        for i in 0..routes_per_thread {
                            let target = h.route(i);
                            acc ^= target.index();
                            let snap = h.snapshot();
                            snap.record_join(target);
                            snap.record_depart(target);
                        }
                        std::hint::black_box(acc);
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("router bench worker panicked");
            }
        });
    };
    iter();
    let mut total = 0u64;
    let mut best = 0.0f64;
    let start = Instant::now();
    loop {
        let run_start = Instant::now();
        iter();
        best = best.max(routes_per_iter as f64 / run_start.elapsed().as_secs_f64());
        total += routes_per_iter;
        if start.elapsed() >= budget {
            break;
        }
    }
    RouterCell {
        threads,
        routes_per_iter,
        total_routes: total,
        elapsed: start.elapsed(),
        routes_per_sec: best,
    }
}

/// Builds the capacity vector for a named scenario. The capacity RNG is
/// seeded per (scenario, n) so every run times identical bin layouts.
fn capacities(scenario: &str, n: usize) -> CapacityVector {
    match scenario {
        "uniform" => CapacityVector::uniform(n, 4),
        "two_class" => CapacityVector::two_class(n / 2, 1, n - n / 2, 8),
        "zipf" => {
            let mut rng = Xoshiro256PlusPlus::from_u64_seed(bnb_bench::BENCH_SEED ^ n as u64);
            CapacityVector::zipf(n, 64, 1.1, &mut rng)
        }
        other => unreachable!("unknown scenario {other}"),
    }
}

/// Times the batched throw path on one grid cell: repeated batches of
/// `n` balls into a fresh (reset) bin array until the budget elapses.
fn measure(scenario: &'static str, n: usize, d: usize, budget: Duration) -> Cell {
    let caps = capacities(scenario, n);
    let config = GameConfig::with_d(d);
    let mut game = config.build(&caps, bnb_bench::BENCH_SEED);
    let batch = n as u64;
    // Warm-up batch: pulls the table and bins into cache, pays the lazy
    // page faults, and is excluded from timing.
    game.throw_many(batch);
    game.reset();
    let mut thrown = 0u64;
    let start = Instant::now();
    loop {
        game.throw_many(batch);
        game.reset();
        thrown += batch;
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed = start.elapsed();
    Cell {
        scenario,
        n,
        d,
        balls_thrown: thrown,
        elapsed,
        balls_per_sec: thrown as f64 / elapsed.as_secs_f64(),
        baseline_balls_per_sec: baseline_for(scenario, n, d),
    }
}

fn json_escape_free(s: &str) -> &str {
    // Scenario names and modes are static identifiers; assert rather
    // than implement a general JSON string escaper.
    debug_assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    s
}

fn render_json(cells: &[Cell], mode: &str) -> String {
    let generated = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str(&format!("  \"generated_unix_secs\": {generated},\n"));
    out.push_str(&format!("  \"seed\": {},\n", bnb_bench::BENCH_SEED));
    out.push_str("  \"baseline_commit\": \"ce0cd29\",\n");
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let baseline = c
            .baseline_balls_per_sec
            .map_or("null".to_string(), |b| format!("{b:.4e}"));
        let speedup = c.baseline_balls_per_sec.map_or("null".to_string(), |b| {
            format!("{:.2}", c.balls_per_sec / b)
        });
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"n\": {}, \"d\": {}, \
             \"balls_per_sec\": {:.4e}, \"balls_thrown\": {}, \
             \"elapsed_secs\": {:.4}, \"baseline_balls_per_sec\": {}, \
             \"speedup_vs_baseline\": {}}}{}\n",
            json_escape_free(c.scenario),
            c.n,
            c.d,
            c.balls_per_sec,
            c.balls_thrown,
            c.elapsed.as_secs_f64(),
            baseline,
            speedup,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_cluster_json(
    cells: &[ClusterCell],
    telemetry: &TelemetryBlock,
    sharded: &ShardedBlock,
    mode: &str,
) -> String {
    let generated = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 4,\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str(&format!("  \"generated_unix_secs\": {generated},\n"));
    out.push_str(&format!("  \"seed\": {},\n", bnb_bench::BENCH_SEED));
    out.push_str("  \"baseline_commit\": \"40c5325\",\n");
    out.push_str(&format!(
        "  \"baseline_note\": \"{CLUSTER_BASELINE_NOTE}\",\n"
    ));
    out.push_str(&format!("  \"diurnal_note\": \"{DIURNAL_NOTE}\",\n"));
    // Scheduler internals (deterministic counters) plus the measured
    // cost of turning telemetry on, interleaved in this same invocation
    // (see `measure_telemetry`). Schema 3: the fused loop's departure
    // path is the slot-keyed lazy board, so the fingerprint switched
    // from the calendar's counter family to `lazy.*` plus the
    // next-free bypass count.
    out.push_str(&format!(
        "  \"telemetry\": {{\"scenario\": \"two_class\", \
         \"lazy_inserts\": {}, \"lazy_stale_pops\": {}, \
         \"lazy_overwrites\": {}, \"lazy_rebuilds\": {}, \
         \"next_free_bypasses\": {}, \
         \"req_per_sec_telemetry_off\": {:.4e}, \
         \"req_per_sec_telemetry_on\": {:.4e}, \
         \"on_over_off_ratio\": {:.3}}},\n",
        telemetry.lazy_inserts,
        telemetry.lazy_stale_pops,
        telemetry.lazy_overwrites,
        telemetry.lazy_rebuilds,
        telemetry.bypasses,
        telemetry.off_req_per_sec,
        telemetry.on_req_per_sec,
        telemetry.on_req_per_sec / telemetry.off_req_per_sec,
    ));
    // Schema 4: the sharded-scale cell — the giant (131072-server)
    // scenario on the space-sharded engine at 1 vs 4 workers, with the
    // host's core count recorded next to the ratio (see SHARDED_NOTE).
    out.push_str(&format!(
        "  \"sharded\": {{\"scenario\": \"giant\", \"cores\": {}, \
         \"requests_per_iter\": {}, \
         \"req_per_sec_w1\": {:.4e}, \
         \"req_per_sec_w4\": {:.4e}, \
         \"speedup_w4_over_w1\": {:.3}, \
         \"note\": \"{SHARDED_NOTE}\"}},\n",
        sharded.cores,
        sharded.requests_per_iter,
        sharded.w1_req_per_sec,
        sharded.w4_req_per_sec,
        sharded.w4_req_per_sec / sharded.w1_req_per_sec,
    ));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let baseline = c
            .baseline_req_per_sec
            .map_or("null".to_string(), |b| format!("{b:.4e}"));
        let speedup = c
            .baseline_req_per_sec
            .map_or("null".to_string(), |b| format!("{:.2}", c.req_per_sec / b));
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"requests_per_iter\": {}, \
             \"req_per_sec\": {:.4e}, \"requests_total\": {}, \
             \"elapsed_secs\": {:.4}, \"baseline_req_per_sec\": {}, \
             \"speedup_vs_baseline\": {}}}{}\n",
            json_escape_free(c.scenario),
            c.requests_per_iter,
            c.req_per_sec,
            c.total_requests,
            c.elapsed.as_secs_f64(),
            baseline,
            speedup,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_router_json(cells: &[RouterCell], sim_path_routes_per_sec: f64, mode: &str) -> String {
    let generated = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str(&format!("  \"generated_unix_secs\": {generated},\n"));
    out.push_str(&format!("  \"seed\": {},\n", bnb_bench::BENCH_SEED));
    out.push_str("  \"fleet\": \"two_class_64\",\n");
    out.push_str("  \"spec\": \"d_choice_d2\",\n");
    out.push_str(&format!(
        "  \"sim_path_routes_per_sec\": {sim_path_routes_per_sec:.4e},\n"
    ));
    out.push_str(&format!(
        "  \"baseline_note\": \"{ROUTER_BASELINE_NOTE}\",\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"routes_per_iter\": {}, \
             \"routes_per_sec\": {:.4e}, \"routes_total\": {}, \
             \"elapsed_secs\": {:.4}, \"ratio_vs_sim_path\": {:.3}}}{}\n",
            c.threads,
            c.routes_per_iter,
            c.routes_per_sec,
            c.total_routes,
            c.elapsed.as_secs_f64(),
            c.routes_per_sec / sim_path_routes_per_sec,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn usage() -> &'static str {
    "Usage: bench-snapshot [--check] [--floor RATIO] [--out PATH] [--cluster-out PATH]\n\
     \x20                     [--router-out PATH]\n\
     \n\
     Measures balls/sec of the throw kernel over the standard scenario\n\
     grid (-> BENCH_throw.json), requests/sec of the cluster simulator\n\
     over its workload grid (-> BENCH_cluster.json), and routed\n\
     placements/sec of the bnb-router data plane under 1-32 thread\n\
     contention (-> BENCH_router.json), in the current directory by\n\
     default.\n\
     \n\
     Options:\n\
     \x20  --check             tiny grids + short budget: CI smoke that\n\
     \x20                      the snapshot pipeline still produces valid\n\
     \x20                      files\n\
     \x20  --floor RATIO       perf-regression gate: fail if any cluster\n\
     \x20                      cell with a recorded baseline measures\n\
     \x20                      below RATIO x that baseline, or if the\n\
     \x20                      1-thread router cell falls below RATIO x\n\
     \x20                      the in-simulator placement path (use a\n\
     \x20                      generous ratio, e.g. 0.25 — the gate is\n\
     \x20                      meant to catch debug-build-scale\n\
     \x20                      regressions without flaking on shared\n\
     \x20                      runners)\n\
     \x20  --out PATH          throw-kernel output (./BENCH_throw.json)\n\
     \x20  --cluster-out PATH  cluster output (./BENCH_cluster.json)\n\
     \x20  --router-out PATH   router output (./BENCH_router.json)\n"
}

fn main() -> ExitCode {
    let mut check = false;
    let mut floor: Option<f64> = None;
    let mut out_path = PathBuf::from("BENCH_throw.json");
    let mut cluster_out_path = PathBuf::from("BENCH_cluster.json");
    let mut router_out_path = PathBuf::from("BENCH_router.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--floor" => match args.next().map(|v| v.parse::<f64>()) {
                Some(Ok(r)) if r > 0.0 && r.is_finite() => floor = Some(r),
                Some(Ok(r)) => {
                    eprintln!("--floor must be a positive ratio, got {r}\n\n{}", usage());
                    return ExitCode::from(2);
                }
                Some(Err(e)) => {
                    eprintln!("bad --floor value: {e}\n\n{}", usage());
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--floor needs a ratio\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = PathBuf::from(p),
                None => {
                    eprintln!("--out needs a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--cluster-out" => match args.next() {
                Some(p) => cluster_out_path = PathBuf::from(p),
                None => {
                    eprintln!("--cluster-out needs a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--router-out" => match args.next() {
                Some(p) => router_out_path = PathBuf::from(p),
                None => {
                    eprintln!("--router-out needs a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option '{other}'\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let (ns, ds, budget, mode): (&[usize], &[usize], Duration, &str) = if check {
        (&[1_000], &[1, 2], Duration::from_millis(30), "check")
    } else {
        (
            &[1_000, 100_000, 1_000_000],
            &[1, 2, 4],
            Duration::from_millis(400),
            "full",
        )
    };

    let mut cells = Vec::new();
    for scenario in ["uniform", "two_class", "zipf"] {
        for &n in ns {
            for &d in ds {
                let cell = measure(scenario, n, d, budget);
                println!(
                    "{:<10} n={:<8} d={}  {:>10.3e} balls/s{}",
                    cell.scenario,
                    cell.n,
                    cell.d,
                    cell.balls_per_sec,
                    cell.baseline_balls_per_sec.map_or(String::new(), |b| {
                        format!("  ({:.2}x vs baseline)", cell.balls_per_sec / b)
                    }),
                );
                cells.push(cell);
            }
        }
    }

    // The cluster grid: end-to-end requests/sec per workload. Check
    // mode keeps runs tiny but still covers every tracked cell, so the
    // `--floor` gate in CI watches the whole grid, not one scenario.
    let all_cluster_cells: &[&'static str] = &[
        "uniform",
        "two_class",
        "zipf",
        "flash_crowd",
        "diurnal",
        "churny_p2p",
    ];
    let (cluster_cells_spec, cluster_requests, cluster_budget): (&[&'static str], u64, Duration) =
        if check {
            (all_cluster_cells, 5_000, Duration::from_millis(30))
        } else {
            (all_cluster_cells, 50_000, Duration::from_millis(400))
        };
    let mut cluster_cells = Vec::new();
    for &cell_name in cluster_cells_spec {
        let cell = measure_cluster(cell_name, cluster_requests, cluster_budget);
        println!(
            "cluster/{:<12} reqs={:<6} {:>10.3e} req/s{}",
            cell.scenario,
            cell.requests_per_iter,
            cell.req_per_sec,
            cell.baseline_req_per_sec.map_or(String::new(), |b| {
                format!("  ({:.2}x vs baseline)", cell.req_per_sec / b)
            }),
        );
        cluster_cells.push(cell);
    }

    // Telemetry overhead on the two_class cell: off and on interleaved
    // in one budget, plus the deterministic scheduler-internals
    // counters for the snapshot's metadata block.
    let telemetry = measure_telemetry(cluster_requests, cluster_budget);
    println!(
        "cluster/telemetry two_class     off {:>10.3e} req/s, on {:>10.3e} req/s ({:.3}x); \
         {} lazy inserts, {} stale pops, {} rebuilds, {} bypasses",
        telemetry.off_req_per_sec,
        telemetry.on_req_per_sec,
        telemetry.on_req_per_sec / telemetry.off_req_per_sec,
        telemetry.lazy_inserts,
        telemetry.lazy_stale_pops,
        telemetry.lazy_rebuilds,
        telemetry.bypasses,
    );

    // The sharded-scale cell: 131072 servers on the space-sharded
    // engine, 1 worker vs 4, interleaved. Check mode shrinks the
    // request budget but still exercises the whole engine (fleet
    // partitioning, epoch rounds, shard merge).
    let (sharded_requests, sharded_budget) = if check {
        (20_000u64, Duration::from_millis(30))
    } else {
        (200_000u64, Duration::from_millis(1500))
    };
    let sharded = measure_sharded(sharded_requests, sharded_budget);
    println!(
        "cluster/sharded giant           w1 {:>10.3e} req/s, w4 {:>10.3e} req/s ({:.2}x on {} core(s))",
        sharded.w1_req_per_sec,
        sharded.w4_req_per_sec,
        sharded.w4_req_per_sec / sharded.w1_req_per_sec,
        sharded.cores,
    );

    // The router contention grid: the same fleet shape, routed through
    // 1-32 cloned handles over one epoch-published view, next to the
    // bare in-simulator placement path measured in the same window.
    let (router_routes_per_thread, router_budget) = if check {
        (2_000u64, Duration::from_millis(30))
    } else {
        (100_000u64, Duration::from_millis(400))
    };
    let sim_path = measure_sim_path(router_routes_per_thread, router_budget);
    println!("router/sim_path (bare engine)   {sim_path:>10.3e} routes/s");
    let mut router_cells = Vec::new();
    for &threads in &[1usize, 2, 4, 8, 16, 32] {
        let cell = measure_router(threads, router_routes_per_thread, router_budget);
        println!(
            "router/threads={:<2}  {:>10.3e} routes/s  ({:.2}x vs sim path)",
            cell.threads,
            cell.routes_per_sec,
            cell.routes_per_sec / sim_path,
        );
        router_cells.push(cell);
    }

    // The perf floor: every cluster cell with a recorded baseline must
    // clear `ratio × baseline` (tightened per cell by [`CELL_FLOOR`]),
    // and the 1-thread router cell must clear `ratio × sim_path` (the
    // embeddable surface may cost something, but never 4x). Ratios are
    // generous by design — the gate exists to catch structural
    // regressions (a debug build, an accidentally quadratic path), not
    // to arbitrate benchmark noise.
    if let Some(ratio) = floor {
        let mut failed = false;
        for c in &cluster_cells {
            if let Some(b) = c.baseline_req_per_sec {
                let cell_ratio = CELL_FLOOR
                    .iter()
                    .find(|(name, _)| *name == c.scenario)
                    .map_or(ratio, |&(_, r)| ratio.max(r));
                let min = cell_ratio * b;
                if c.req_per_sec < min {
                    eprintln!(
                        "FLOOR VIOLATION: cluster/{} measured {:.3e} req/s, \
                         below {cell_ratio} x baseline {b:.3e} = {min:.3e}",
                        c.scenario, c.req_per_sec
                    );
                    failed = true;
                }
            }
        }
        // The telemetry-overhead gate: sampled spans and plain counters
        // must stay within 10% of the telemetry-off rate, measured
        // interleaved in this same invocation so both sides saw the
        // same host weather. A breach means instrumentation crept onto
        // the per-event path (an unsampled timer, an allocation), which
        // no amount of shared-runner noise produces at best-of-N.
        const TELEMETRY_OVERHEAD_FLOOR: f64 = 0.9;
        if telemetry.on_req_per_sec < TELEMETRY_OVERHEAD_FLOOR * telemetry.off_req_per_sec {
            eprintln!(
                "FLOOR VIOLATION: telemetry-on two_class measured {:.3e} req/s, below \
                 {TELEMETRY_OVERHEAD_FLOOR} x its interleaved telemetry-off rate {:.3e}",
                telemetry.on_req_per_sec, telemetry.off_req_per_sec
            );
            failed = true;
        }
        // The sharded-scaling gate: at 4 workers the giant cell must
        // hold at least 2x its own 1-worker rate — but only on hosts
        // that physically have 4 cores to scale onto. On narrower hosts
        // the ratio measures oversubscription overhead, not scaling
        // (see SHARDED_NOTE), so the gate stays disarmed and the
        // recorded figure is context, not a contract.
        const SHARDED_SPEEDUP_FLOOR: f64 = 2.0;
        if sharded.cores >= 4
            && sharded.w4_req_per_sec < SHARDED_SPEEDUP_FLOOR * sharded.w1_req_per_sec
        {
            eprintln!(
                "FLOOR VIOLATION: sharded giant at 4 workers measured {:.3e} req/s, below \
                 {SHARDED_SPEEDUP_FLOOR} x its interleaved 1-worker rate {:.3e} on a \
                 {}-core host",
                sharded.w4_req_per_sec, sharded.w1_req_per_sec, sharded.cores
            );
            failed = true;
        }
        if let Some(single) = router_cells.iter().find(|c| c.threads == 1) {
            let min = ratio * sim_path;
            if single.routes_per_sec < min {
                eprintln!(
                    "FLOOR VIOLATION: router/threads=1 measured {:.3e} routes/s, \
                     below {ratio} x sim path {sim_path:.3e} = {min:.3e}",
                    single.routes_per_sec
                );
                failed = true;
            }
        }
        if failed {
            eprintln!(
                "bench floor gate failed — a tracked cluster cell lost more than \
                 {:.0}% of its recorded throughput (debug build? pathological \
                 regression?)",
                (1.0 - ratio) * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("floor gate passed: every tracked cell >= {ratio} x its baseline");
    }

    let write_file = |path: &PathBuf, json: &str| {
        std::fs::File::create(path)
            .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.sync_all()))
    };
    for (path, json) in [
        (&out_path, render_json(&cells, mode)),
        (
            &cluster_out_path,
            render_cluster_json(&cluster_cells, &telemetry, &sharded, mode),
        ),
        (
            &router_out_path,
            render_router_json(&router_cells, sim_path, mode),
        ),
    ] {
        match write_file(path, &json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
