//! `bench-snapshot` — tracked balls/sec measurements for the throw
//! kernel, and requests/sec for the cluster simulator.
//!
//! Criterion benches are great for interactive A/B work but their output
//! is ephemeral; this runner writes machine-readable snapshots so the
//! repo can track its throughput trajectory across PRs:
//!
//! * `BENCH_throw.json` — the engine's batched throw path over the grid
//!   `n ∈ {1e3, 1e5, 1e6} × d ∈ {1, 2, 4} × {uniform, two-class, Zipf}`
//!   capacities, balls/sec per cell next to the recorded pre-kernel
//!   baseline;
//! * `BENCH_cluster.json` — end-to-end requests/sec of the `bnb-cluster`
//!   discrete-event simulator over the registered scenario workloads,
//!   next to the baseline recorded when the subsystem landed.
//!
//! ```text
//! bench-snapshot                       # full grids -> ./BENCH_throw.json
//!                                      #             + ./BENCH_cluster.json
//! bench-snapshot --out t.json --cluster-out c.json
//! bench-snapshot --check               # tiny grids, CI smoke (fails if a
//!                                      # file cannot be produced)
//! ```

use bnb_cluster::{find_scenario, ClusterSim};
use bnb_core::prelude::*;
use bnb_distributions::Xoshiro256PlusPlus;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Throughput of one grid cell.
struct Cell {
    scenario: &'static str,
    n: usize,
    d: usize,
    balls_thrown: u64,
    elapsed: Duration,
    balls_per_sec: f64,
    baseline_balls_per_sec: Option<f64>,
}

/// Pre-kernel baseline, in balls/sec, measured with this same runner at
/// the seed engine (commit `ce0cd29`, scalar `throw()` loop with the
/// two-RNG-call float alias sampler) on the single-core CI container,
/// averaged over two full-grid runs. `(scenario, n, d, balls_per_sec)`.
const SEED_BASELINE: &[(&str, usize, usize, f64)] = &[
    ("uniform", 1_000, 1, 8.054e7),
    ("uniform", 1_000, 2, 3.811e7),
    ("uniform", 1_000, 4, 1.794e7),
    ("uniform", 100_000, 1, 3.838e7),
    ("uniform", 100_000, 2, 1.482e7),
    ("uniform", 100_000, 4, 7.916e6),
    ("uniform", 1_000_000, 1, 1.574e7),
    ("uniform", 1_000_000, 2, 6.468e6),
    ("uniform", 1_000_000, 4, 3.186e6),
    ("two_class", 1_000, 1, 6.259e7),
    ("two_class", 1_000, 2, 2.918e7),
    ("two_class", 1_000, 4, 1.383e7),
    ("two_class", 100_000, 1, 2.829e7),
    ("two_class", 100_000, 2, 1.303e7),
    ("two_class", 100_000, 4, 7.070e6),
    ("two_class", 1_000_000, 1, 1.146e7),
    ("two_class", 1_000_000, 2, 4.557e6),
    ("two_class", 1_000_000, 4, 2.473e6),
    ("zipf", 1_000, 1, 5.745e7),
    ("zipf", 1_000, 2, 2.516e7),
    ("zipf", 1_000, 4, 1.240e7),
    ("zipf", 100_000, 1, 2.440e7),
    ("zipf", 100_000, 2, 1.280e7),
    ("zipf", 100_000, 4, 6.392e6),
    ("zipf", 1_000_000, 1, 9.070e6),
    ("zipf", 1_000_000, 2, 4.567e6),
    ("zipf", 1_000_000, 4, 2.571e6),
];

fn baseline_for(scenario: &str, n: usize, d: usize) -> Option<f64> {
    SEED_BASELINE
        .iter()
        .find(|&&(s, bn, bd, _)| s == scenario && bn == n && bd == d)
        .map(|&(_, _, _, bps)| bps)
}

/// Requests/sec of one cluster-simulator scenario.
struct ClusterCell {
    scenario: &'static str,
    requests_per_iter: u64,
    total_requests: u64,
    elapsed: Duration,
    req_per_sec: f64,
    baseline_req_per_sec: Option<f64>,
}

/// End-to-end cluster baseline, in requests/sec: the PR-3 cluster
/// subsystem (commit `40c5325` — binary heap, per-event RNG draws,
/// inverse-CDF exponentials) **rebuilt and re-measured on the current
/// bench host**, interleaved with HEAD runs in the same windows, under
/// the same best-single-run estimator. `(scenario, req_per_sec)`.
///
/// Re-recorded (again) at the fused-hot-loop PR, this time for
/// machine comparability: the previous baselines were carried over
/// from snapshots taken on a *different, ~2× faster host*, so every
/// `speedup_vs_baseline` mixed machines and the shared-runner noise
/// swung the apparent ratio by 2× between runs of identical code.
/// Same-host, same-window, best-run measurement is the only ratio that
/// tracks the code rather than the hardware du jour; the measured
/// history of both protocols is kept in the README's cluster
/// trajectory table. `diurnal` landed with PR 4, so its baseline is
/// commit `3d05046` re-measured the same way.
const CLUSTER_BASELINE: &[(&str, f64)] = &[
    ("uniform", 5.839e6),
    ("two_class", 6.091e6),
    ("zipf", 5.706e6),
    ("flash_crowd", 5.283e6),
    ("diurnal", 6.249e6),
    ("churny_p2p", 4.533e6),
];

/// One-line provenance note embedded in the cluster snapshot (see
/// [`CLUSTER_BASELINE`]).
const CLUSTER_BASELINE_NOTE: &str = "baselines are the PR-3 subsystem (40c5325; diurnal: \
     3d05046 where it landed) rebuilt and re-measured on this bench host, interleaved \
     with HEAD under the best-single-run estimator -- same-host ratios, not the old \
     cross-machine ones";

fn cluster_baseline_for(scenario: &str) -> Option<f64> {
    CLUSTER_BASELINE
        .iter()
        .find(|&&(s, _)| s == scenario)
        .map(|&(_, rps)| rps)
}

/// JSON cell names use underscores; the scenario registry uses dashes.
fn cluster_scenario_id(cell_name: &str) -> String {
    cell_name.replace('_', "-")
}

/// Times one cluster scenario: repeated full runs of `requests` offered
/// requests (fresh simulator each iteration, construction included — the
/// figure tracks serving throughput end to end) until the budget
/// elapses.
///
/// The reported `req_per_sec` is the **best single run** within the
/// budget, not the mean — the `timeit` convention. These snapshots are
/// taken on shared hosts whose effective speed swings by 2× with
/// neighbour load on a sub-second scale; the mean of a 0.4 s window
/// measures the neighbours as much as the code, while the fastest run
/// is a stable estimate of the code's intrinsic speed (interference
/// only ever slows a run down). The committed baselines were re-taken
/// under this same estimator, on this same host class, so
/// `speedup_vs_baseline` compares like with like.
fn measure_cluster(cell_name: &'static str, requests: u64, budget: Duration) -> ClusterCell {
    let scenario = find_scenario(&cluster_scenario_id(cell_name))
        .unwrap_or_else(|| unreachable!("unknown cluster scenario {cell_name}"));
    let run = || {
        let spec = (scenario.build)(bnb_bench::BENCH_SEED, requests);
        let metrics = ClusterSim::new(spec, bnb_bench::BENCH_SEED).run();
        assert_eq!(
            metrics.completed + metrics.dropped + metrics.orphaned,
            requests,
            "{cell_name}: lost requests during benching"
        );
    };
    // Warm-up run: page-faults, allocator growth, branch history.
    run();
    let mut total = 0u64;
    let mut best = 0.0f64;
    let start = Instant::now();
    loop {
        let run_start = Instant::now();
        run();
        let run_elapsed = run_start.elapsed();
        best = best.max(requests as f64 / run_elapsed.as_secs_f64());
        total += requests;
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed = start.elapsed();
    ClusterCell {
        scenario: cell_name,
        requests_per_iter: requests,
        total_requests: total,
        elapsed,
        req_per_sec: best,
        baseline_req_per_sec: cluster_baseline_for(cell_name),
    }
}

/// Builds the capacity vector for a named scenario. The capacity RNG is
/// seeded per (scenario, n) so every run times identical bin layouts.
fn capacities(scenario: &str, n: usize) -> CapacityVector {
    match scenario {
        "uniform" => CapacityVector::uniform(n, 4),
        "two_class" => CapacityVector::two_class(n / 2, 1, n - n / 2, 8),
        "zipf" => {
            let mut rng = Xoshiro256PlusPlus::from_u64_seed(bnb_bench::BENCH_SEED ^ n as u64);
            CapacityVector::zipf(n, 64, 1.1, &mut rng)
        }
        other => unreachable!("unknown scenario {other}"),
    }
}

/// Times the batched throw path on one grid cell: repeated batches of
/// `n` balls into a fresh (reset) bin array until the budget elapses.
fn measure(scenario: &'static str, n: usize, d: usize, budget: Duration) -> Cell {
    let caps = capacities(scenario, n);
    let config = GameConfig::with_d(d);
    let mut game = config.build(&caps, bnb_bench::BENCH_SEED);
    let batch = n as u64;
    // Warm-up batch: pulls the table and bins into cache, pays the lazy
    // page faults, and is excluded from timing.
    game.throw_many(batch);
    game.reset();
    let mut thrown = 0u64;
    let start = Instant::now();
    loop {
        game.throw_many(batch);
        game.reset();
        thrown += batch;
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed = start.elapsed();
    Cell {
        scenario,
        n,
        d,
        balls_thrown: thrown,
        elapsed,
        balls_per_sec: thrown as f64 / elapsed.as_secs_f64(),
        baseline_balls_per_sec: baseline_for(scenario, n, d),
    }
}

fn json_escape_free(s: &str) -> &str {
    // Scenario names and modes are static identifiers; assert rather
    // than implement a general JSON string escaper.
    debug_assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    s
}

fn render_json(cells: &[Cell], mode: &str) -> String {
    let generated = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str(&format!("  \"generated_unix_secs\": {generated},\n"));
    out.push_str(&format!("  \"seed\": {},\n", bnb_bench::BENCH_SEED));
    out.push_str("  \"baseline_commit\": \"ce0cd29\",\n");
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let baseline = c
            .baseline_balls_per_sec
            .map_or("null".to_string(), |b| format!("{b:.4e}"));
        let speedup = c.baseline_balls_per_sec.map_or("null".to_string(), |b| {
            format!("{:.2}", c.balls_per_sec / b)
        });
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"n\": {}, \"d\": {}, \
             \"balls_per_sec\": {:.4e}, \"balls_thrown\": {}, \
             \"elapsed_secs\": {:.4}, \"baseline_balls_per_sec\": {}, \
             \"speedup_vs_baseline\": {}}}{}\n",
            json_escape_free(c.scenario),
            c.n,
            c.d,
            c.balls_per_sec,
            c.balls_thrown,
            c.elapsed.as_secs_f64(),
            baseline,
            speedup,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_cluster_json(cells: &[ClusterCell], mode: &str) -> String {
    let generated = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str(&format!("  \"generated_unix_secs\": {generated},\n"));
    out.push_str(&format!("  \"seed\": {},\n", bnb_bench::BENCH_SEED));
    out.push_str("  \"baseline_commit\": \"40c5325\",\n");
    out.push_str(&format!(
        "  \"baseline_note\": \"{CLUSTER_BASELINE_NOTE}\",\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let baseline = c
            .baseline_req_per_sec
            .map_or("null".to_string(), |b| format!("{b:.4e}"));
        let speedup = c
            .baseline_req_per_sec
            .map_or("null".to_string(), |b| format!("{:.2}", c.req_per_sec / b));
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"requests_per_iter\": {}, \
             \"req_per_sec\": {:.4e}, \"requests_total\": {}, \
             \"elapsed_secs\": {:.4}, \"baseline_req_per_sec\": {}, \
             \"speedup_vs_baseline\": {}}}{}\n",
            json_escape_free(c.scenario),
            c.requests_per_iter,
            c.req_per_sec,
            c.total_requests,
            c.elapsed.as_secs_f64(),
            baseline,
            speedup,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn usage() -> &'static str {
    "Usage: bench-snapshot [--check] [--floor RATIO] [--out PATH] [--cluster-out PATH]\n\
     \n\
     Measures balls/sec of the throw kernel over the standard scenario\n\
     grid (-> BENCH_throw.json) and requests/sec of the cluster\n\
     simulator over its workload grid (-> BENCH_cluster.json), in the\n\
     current directory by default.\n\
     \n\
     Options:\n\
     \x20  --check             tiny grids + short budget: CI smoke that\n\
     \x20                      the snapshot pipeline still produces valid\n\
     \x20                      files\n\
     \x20  --floor RATIO       perf-regression gate: fail if any cluster\n\
     \x20                      cell with a recorded baseline measures\n\
     \x20                      below RATIO x that baseline (use a\n\
     \x20                      generous ratio, e.g. 0.25 — the gate is\n\
     \x20                      meant to catch debug-build-scale\n\
     \x20                      regressions without flaking on shared\n\
     \x20                      runners)\n\
     \x20  --out PATH          throw-kernel output (./BENCH_throw.json)\n\
     \x20  --cluster-out PATH  cluster output (./BENCH_cluster.json)\n"
}

fn main() -> ExitCode {
    let mut check = false;
    let mut floor: Option<f64> = None;
    let mut out_path = PathBuf::from("BENCH_throw.json");
    let mut cluster_out_path = PathBuf::from("BENCH_cluster.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--floor" => match args.next().map(|v| v.parse::<f64>()) {
                Some(Ok(r)) if r > 0.0 && r.is_finite() => floor = Some(r),
                Some(Ok(r)) => {
                    eprintln!("--floor must be a positive ratio, got {r}\n\n{}", usage());
                    return ExitCode::from(2);
                }
                Some(Err(e)) => {
                    eprintln!("bad --floor value: {e}\n\n{}", usage());
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--floor needs a ratio\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = PathBuf::from(p),
                None => {
                    eprintln!("--out needs a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--cluster-out" => match args.next() {
                Some(p) => cluster_out_path = PathBuf::from(p),
                None => {
                    eprintln!("--cluster-out needs a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option '{other}'\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let (ns, ds, budget, mode): (&[usize], &[usize], Duration, &str) = if check {
        (&[1_000], &[1, 2], Duration::from_millis(30), "check")
    } else {
        (
            &[1_000, 100_000, 1_000_000],
            &[1, 2, 4],
            Duration::from_millis(400),
            "full",
        )
    };

    let mut cells = Vec::new();
    for scenario in ["uniform", "two_class", "zipf"] {
        for &n in ns {
            for &d in ds {
                let cell = measure(scenario, n, d, budget);
                println!(
                    "{:<10} n={:<8} d={}  {:>10.3e} balls/s{}",
                    cell.scenario,
                    cell.n,
                    cell.d,
                    cell.balls_per_sec,
                    cell.baseline_balls_per_sec.map_or(String::new(), |b| {
                        format!("  ({:.2}x vs baseline)", cell.balls_per_sec / b)
                    }),
                );
                cells.push(cell);
            }
        }
    }

    // The cluster grid: end-to-end requests/sec per workload. Check
    // mode keeps runs tiny but still covers every tracked cell, so the
    // `--floor` gate in CI watches the whole grid, not one scenario.
    let all_cluster_cells: &[&'static str] = &[
        "uniform",
        "two_class",
        "zipf",
        "flash_crowd",
        "diurnal",
        "churny_p2p",
    ];
    let (cluster_cells_spec, cluster_requests, cluster_budget): (&[&'static str], u64, Duration) =
        if check {
            (all_cluster_cells, 5_000, Duration::from_millis(30))
        } else {
            (all_cluster_cells, 50_000, Duration::from_millis(400))
        };
    let mut cluster_cells = Vec::new();
    for &cell_name in cluster_cells_spec {
        let cell = measure_cluster(cell_name, cluster_requests, cluster_budget);
        println!(
            "cluster/{:<12} reqs={:<6} {:>10.3e} req/s{}",
            cell.scenario,
            cell.requests_per_iter,
            cell.req_per_sec,
            cell.baseline_req_per_sec.map_or(String::new(), |b| {
                format!("  ({:.2}x vs baseline)", cell.req_per_sec / b)
            }),
        );
        cluster_cells.push(cell);
    }

    // The perf floor: every cluster cell with a recorded baseline must
    // clear `ratio × baseline`. Ratios are generous by design — the
    // gate exists to catch structural regressions (a debug build, an
    // accidentally quadratic path), not to arbitrate benchmark noise.
    if let Some(ratio) = floor {
        let mut failed = false;
        for c in &cluster_cells {
            if let Some(b) = c.baseline_req_per_sec {
                let min = ratio * b;
                if c.req_per_sec < min {
                    eprintln!(
                        "FLOOR VIOLATION: cluster/{} measured {:.3e} req/s, \
                         below {ratio} x baseline {b:.3e} = {min:.3e}",
                        c.scenario, c.req_per_sec
                    );
                    failed = true;
                }
            }
        }
        if failed {
            eprintln!(
                "bench floor gate failed — a tracked cluster cell lost more than \
                 {:.0}% of its recorded throughput (debug build? pathological \
                 regression?)",
                (1.0 - ratio) * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("floor gate passed: every tracked cell >= {ratio} x its baseline");
    }

    let write_file = |path: &PathBuf, json: &str| {
        std::fs::File::create(path)
            .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.sync_all()))
    };
    for (path, json) in [
        (&out_path, render_json(&cells, mode)),
        (&cluster_out_path, render_cluster_json(&cluster_cells, mode)),
    ] {
        match write_file(path, &json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
