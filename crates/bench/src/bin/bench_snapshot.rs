//! `bench-snapshot` — tracked balls/sec measurements for the throw kernel.
//!
//! Criterion benches are great for interactive A/B work but their output
//! is ephemeral; this runner writes a machine-readable `BENCH_throw.json`
//! so the repo can track its throughput trajectory across PRs. It times
//! the engine's batched throw path over the standard grid
//! `n ∈ {1e3, 1e5, 1e6} × d ∈ {1, 2, 4} × {uniform, two-class, Zipf}`
//! capacities and reports balls/sec per cell, next to the recorded
//! pre-kernel baseline for the same cell.
//!
//! ```text
//! bench-snapshot                       # full grid -> ./BENCH_throw.json
//! bench-snapshot --out results.json    # full grid -> results.json
//! bench-snapshot --check               # tiny grid, CI smoke (fails if the
//!                                      # file cannot be produced)
//! ```

use bnb_core::prelude::*;
use bnb_distributions::Xoshiro256PlusPlus;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Throughput of one grid cell.
struct Cell {
    scenario: &'static str,
    n: usize,
    d: usize,
    balls_thrown: u64,
    elapsed: Duration,
    balls_per_sec: f64,
    baseline_balls_per_sec: Option<f64>,
}

/// Pre-kernel baseline, in balls/sec, measured with this same runner at
/// the seed engine (commit `ce0cd29`, scalar `throw()` loop with the
/// two-RNG-call float alias sampler) on the single-core CI container,
/// averaged over two full-grid runs. `(scenario, n, d, balls_per_sec)`.
const SEED_BASELINE: &[(&str, usize, usize, f64)] = &[
    ("uniform", 1_000, 1, 8.054e7),
    ("uniform", 1_000, 2, 3.811e7),
    ("uniform", 1_000, 4, 1.794e7),
    ("uniform", 100_000, 1, 3.838e7),
    ("uniform", 100_000, 2, 1.482e7),
    ("uniform", 100_000, 4, 7.916e6),
    ("uniform", 1_000_000, 1, 1.574e7),
    ("uniform", 1_000_000, 2, 6.468e6),
    ("uniform", 1_000_000, 4, 3.186e6),
    ("two_class", 1_000, 1, 6.259e7),
    ("two_class", 1_000, 2, 2.918e7),
    ("two_class", 1_000, 4, 1.383e7),
    ("two_class", 100_000, 1, 2.829e7),
    ("two_class", 100_000, 2, 1.303e7),
    ("two_class", 100_000, 4, 7.070e6),
    ("two_class", 1_000_000, 1, 1.146e7),
    ("two_class", 1_000_000, 2, 4.557e6),
    ("two_class", 1_000_000, 4, 2.473e6),
    ("zipf", 1_000, 1, 5.745e7),
    ("zipf", 1_000, 2, 2.516e7),
    ("zipf", 1_000, 4, 1.240e7),
    ("zipf", 100_000, 1, 2.440e7),
    ("zipf", 100_000, 2, 1.280e7),
    ("zipf", 100_000, 4, 6.392e6),
    ("zipf", 1_000_000, 1, 9.070e6),
    ("zipf", 1_000_000, 2, 4.567e6),
    ("zipf", 1_000_000, 4, 2.571e6),
];

fn baseline_for(scenario: &str, n: usize, d: usize) -> Option<f64> {
    SEED_BASELINE
        .iter()
        .find(|&&(s, bn, bd, _)| s == scenario && bn == n && bd == d)
        .map(|&(_, _, _, bps)| bps)
}

/// Builds the capacity vector for a named scenario. The capacity RNG is
/// seeded per (scenario, n) so every run times identical bin layouts.
fn capacities(scenario: &str, n: usize) -> CapacityVector {
    match scenario {
        "uniform" => CapacityVector::uniform(n, 4),
        "two_class" => CapacityVector::two_class(n / 2, 1, n - n / 2, 8),
        "zipf" => {
            let mut rng = Xoshiro256PlusPlus::from_u64_seed(bnb_bench::BENCH_SEED ^ n as u64);
            CapacityVector::zipf(n, 64, 1.1, &mut rng)
        }
        other => unreachable!("unknown scenario {other}"),
    }
}

/// Times the batched throw path on one grid cell: repeated batches of
/// `n` balls into a fresh (reset) bin array until the budget elapses.
fn measure(scenario: &'static str, n: usize, d: usize, budget: Duration) -> Cell {
    let caps = capacities(scenario, n);
    let config = GameConfig::with_d(d);
    let mut game = config.build(&caps, bnb_bench::BENCH_SEED);
    let batch = n as u64;
    // Warm-up batch: pulls the table and bins into cache, pays the lazy
    // page faults, and is excluded from timing.
    game.throw_many(batch);
    game.reset();
    let mut thrown = 0u64;
    let start = Instant::now();
    loop {
        game.throw_many(batch);
        game.reset();
        thrown += batch;
        if start.elapsed() >= budget {
            break;
        }
    }
    let elapsed = start.elapsed();
    Cell {
        scenario,
        n,
        d,
        balls_thrown: thrown,
        elapsed,
        balls_per_sec: thrown as f64 / elapsed.as_secs_f64(),
        baseline_balls_per_sec: baseline_for(scenario, n, d),
    }
}

fn json_escape_free(s: &str) -> &str {
    // Scenario names and modes are static identifiers; assert rather
    // than implement a general JSON string escaper.
    debug_assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    s
}

fn render_json(cells: &[Cell], mode: &str) -> String {
    let generated = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape_free(mode)));
    out.push_str(&format!("  \"generated_unix_secs\": {generated},\n"));
    out.push_str(&format!("  \"seed\": {},\n", bnb_bench::BENCH_SEED));
    out.push_str("  \"baseline_commit\": \"ce0cd29\",\n");
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let baseline = c
            .baseline_balls_per_sec
            .map_or("null".to_string(), |b| format!("{b:.4e}"));
        let speedup = c.baseline_balls_per_sec.map_or("null".to_string(), |b| {
            format!("{:.2}", c.balls_per_sec / b)
        });
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"n\": {}, \"d\": {}, \
             \"balls_per_sec\": {:.4e}, \"balls_thrown\": {}, \
             \"elapsed_secs\": {:.4}, \"baseline_balls_per_sec\": {}, \
             \"speedup_vs_baseline\": {}}}{}\n",
            json_escape_free(c.scenario),
            c.n,
            c.d,
            c.balls_per_sec,
            c.balls_thrown,
            c.elapsed.as_secs_f64(),
            baseline,
            speedup,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn usage() -> &'static str {
    "Usage: bench-snapshot [--check] [--out PATH]\n\
     \n\
     Measures balls/sec of the throw kernel over the standard scenario\n\
     grid and writes BENCH_throw.json (default: current directory).\n\
     \n\
     Options:\n\
     \x20  --check      tiny grid + short budget: CI smoke that the\n\
     \x20               snapshot pipeline still produces a valid file\n\
     \x20  --out PATH   output path (default ./BENCH_throw.json)\n"
}

fn main() -> ExitCode {
    let mut check = false;
    let mut out_path = PathBuf::from("BENCH_throw.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match args.next() {
                Some(p) => out_path = PathBuf::from(p),
                None => {
                    eprintln!("--out needs a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option '{other}'\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let (ns, ds, budget, mode): (&[usize], &[usize], Duration, &str) = if check {
        (&[1_000], &[1, 2], Duration::from_millis(30), "check")
    } else {
        (
            &[1_000, 100_000, 1_000_000],
            &[1, 2, 4],
            Duration::from_millis(400),
            "full",
        )
    };

    let mut cells = Vec::new();
    for scenario in ["uniform", "two_class", "zipf"] {
        for &n in ns {
            for &d in ds {
                let cell = measure(scenario, n, d, budget);
                println!(
                    "{:<10} n={:<8} d={}  {:>10.3e} balls/s{}",
                    cell.scenario,
                    cell.n,
                    cell.d,
                    cell.balls_per_sec,
                    cell.baseline_balls_per_sec.map_or(String::new(), |b| {
                        format!("  ({:.2}x vs baseline)", cell.balls_per_sec / b)
                    }),
                );
                cells.push(cell);
            }
        }
    }

    let json = render_json(&cells, mode);
    let write = std::fs::File::create(&out_path)
        .and_then(|mut f| f.write_all(json.as_bytes()).and_then(|()| f.sync_all()));
    match write {
        Ok(()) => {
            println!("wrote {}", out_path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write {}: {e}", out_path.display());
            ExitCode::FAILURE
        }
    }
}
