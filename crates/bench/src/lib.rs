//! # bnb-bench
//!
//! Shared helpers for the criterion benchmark suite. The benches
//! themselves live in `benches/` (one file per concern):
//!
//! * `throw_kernel.rs` — the batched throw kernel vs the scalar loop on
//!   the tracked `BENCH_throw.json` scenario grid,
//! * `figures.rs` — one bench group per paper figure (scaled down),
//! * `core_ops.rs` — throw-loop throughput across policies and `d`,
//! * `samplers.rs` — alias vs. Fenwick vs. cumulative ablation,
//! * `ablations.rs` — protocol design-choice ablations,
//! * `hashring.rs` — consistent-hashing substrate throughput.
//!
//! The crate also ships the `bench-snapshot` binary, which times the
//! kernel over the standard grid and writes the machine-readable
//! `BENCH_throw.json` tracked at the repo root.

#![deny(missing_docs)]

/// Standard deterministic seed used across benches so criterion compares
/// like-for-like work between runs.
pub const BENCH_SEED: u64 = 0xB415_2B11;

/// Reduced repetition count for figure benches (the repro binary, not the
/// benches, is responsible for paper-scale statistics).
pub const BENCH_REPS: usize = 3;
