//! # bnb-bench
//!
//! Shared helpers for the criterion benchmark suite. The benches
//! themselves live in `benches/` (one file per concern):
//!
//! * `figures.rs` — one bench group per paper figure (scaled down),
//! * `core_ops.rs` — throw-loop throughput across policies and `d`,
//! * `samplers.rs` — alias vs. Fenwick vs. cumulative ablation,
//! * `ablations.rs` — protocol design-choice ablations,
//! * `hashring.rs` — consistent-hashing substrate throughput.

#![deny(missing_docs)]

/// Standard deterministic seed used across benches so criterion compares
/// like-for-like work between runs.
pub const BENCH_SEED: u64 = 0xB415_2B11;

/// Reduced repetition count for figure benches (the repro binary, not the
/// benches, is responsible for paper-scale statistics).
pub const BENCH_REPS: usize = 3;
