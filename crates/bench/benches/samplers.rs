//! Weighted-sampler ablation: alias vs Fenwick vs cumulative table.
//!
//! The simulation draws two weighted indices per ball; this bench
//! quantifies why the alias method is the default (O(1) per draw) and
//! what the Fenwick sampler costs in exchange for updatability.

use bnb_distributions::{
    AliasTable, CumulativeSampler, FenwickSampler, WeightedSampler, Xoshiro256PlusPlus,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const DRAWS: u64 = 10_000;

fn weights(n: usize) -> Vec<f64> {
    // Heterogeneous weights resembling a 1-and-8 capacity mix.
    (0..n).map(|i| if i % 2 == 0 { 1.0 } else { 8.0 }).collect()
}

fn sample_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_draw");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(DRAWS));
    for n in [100usize, 10_000, 1_000_000] {
        let w = weights(n);
        let alias = AliasTable::new(&w);
        let fenwick = FenwickSampler::new(&w);
        let cumulative = CumulativeSampler::new(&w);
        group.bench_with_input(BenchmarkId::new("alias", n), &n, |b, _| {
            let mut rng = Xoshiro256PlusPlus::from_u64_seed(bnb_bench::BENCH_SEED);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..DRAWS {
                    acc = acc.wrapping_add(alias.sample(&mut rng));
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("fenwick", n), &n, |b, _| {
            let mut rng = Xoshiro256PlusPlus::from_u64_seed(bnb_bench::BENCH_SEED);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..DRAWS {
                    acc = acc.wrapping_add(fenwick.sample(&mut rng));
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("cumulative", n), &n, |b, _| {
            let mut rng = Xoshiro256PlusPlus::from_u64_seed(bnb_bench::BENCH_SEED);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..DRAWS {
                    acc = acc.wrapping_add(cumulative.sample(&mut rng));
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn build_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_build");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [100usize, 10_000, 1_000_000] {
        let w = weights(n);
        group.bench_with_input(BenchmarkId::new("alias", n), &n, |b, _| {
            b.iter(|| black_box(AliasTable::new(&w)));
        });
        group.bench_with_input(BenchmarkId::new("fenwick", n), &n, |b, _| {
            b.iter(|| black_box(FenwickSampler::new(&w)));
        });
    }
    group.finish();
}

fn fenwick_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_update");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(DRAWS));
    let w = weights(10_000);
    group.bench_function("fenwick_set_weight", |b| {
        let mut f = FenwickSampler::new(&w);
        let mut rng = Xoshiro256PlusPlus::from_u64_seed(bnb_bench::BENCH_SEED);
        b.iter(|| {
            for _ in 0..DRAWS {
                let i = rng.next_below(10_000) as usize;
                f.set_weight(i, rng.next_f64() * 8.0 + 0.5);
            }
            black_box(f.total_weight())
        });
    });
    group.finish();
}

criterion_group!(benches, sample_throughput, build_cost, fenwick_update);
criterion_main!(benches);
