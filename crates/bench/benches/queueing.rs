//! Queueing-substrate throughput: events processed per second across
//! routing policies and utilisations.

use bnb_core::{CapacityVector, Selection};
use bnb_queueing::{QueueSystem, RoutingPolicy, SystemConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const ARRIVALS: u64 = 20_000;

fn queueing_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("queueing");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(ARRIVALS));
    let speeds = CapacityVector::two_class(500, 1, 500, 10);
    for (name, routing, d) in [
        (
            "normalised_jsq_d2",
            RoutingPolicy::ShortestNormalizedQueue,
            2,
        ),
        ("plain_jsq_d2", RoutingPolicy::ShortestQueue, 2),
        ("random_d1", RoutingPolicy::Random, 1),
    ] {
        group.bench_function(BenchmarkId::new("route", name), |b| {
            b.iter(|| {
                let config = SystemConfig {
                    d,
                    routing,
                    selection: Selection::ProportionalToCapacity,
                    rho: 0.9,
                    queue_capacity: None,
                };
                let mut sys = QueueSystem::new(&speeds, config, bnb_bench::BENCH_SEED);
                black_box(sys.run_arrivals(ARRIVALS))
            });
        });
    }
    for rho_pct in [50u32, 90, 99] {
        group.bench_with_input(
            BenchmarkId::new("rho_pct", rho_pct),
            &rho_pct,
            |b, &rho_pct| {
                b.iter(|| {
                    let config = SystemConfig {
                        rho: rho_pct as f64 / 100.0,
                        ..SystemConfig::default()
                    };
                    let mut sys = QueueSystem::new(&speeds, config, bnb_bench::BENCH_SEED);
                    black_box(sys.run_arrivals(ARRIVALS))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, queueing_throughput);
criterion_main!(benches);
