//! Batched throw-kernel throughput: the monomorphized `d = 2` kernel
//! against the scalar one-ball loop and the generic batched path, on the
//! same grid of scenarios that `bench-snapshot` tracks in
//! `BENCH_throw.json`.
//!
//! `throw_many` and the `throw()` loop are bitwise interchangeable (see
//! the draw-order contract in `bnb_core::game`), so the gap between the
//! two series is pure kernel overhead, not different work.

use bnb_core::prelude::*;
use bnb_distributions::Xoshiro256PlusPlus;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const BALLS_PER_ITER: u64 = 10_000;

fn scenario_caps(scenario: &str, n: usize) -> CapacityVector {
    match scenario {
        "uniform" => CapacityVector::uniform(n, 4),
        "two_class" => CapacityVector::two_class(n / 2, 1, n - n / 2, 8),
        "zipf" => {
            let mut rng = Xoshiro256PlusPlus::from_u64_seed(bnb_bench::BENCH_SEED ^ n as u64);
            CapacityVector::zipf(n, 64, 1.1, &mut rng)
        }
        other => unreachable!("unknown scenario {other}"),
    }
}

/// Batched kernel vs scalar loop on the paper's default configuration.
fn kernel_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("throw_kernel");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(BALLS_PER_ITER));
    for scenario in ["uniform", "two_class", "zipf"] {
        for n in [1_000usize, 100_000] {
            let caps = scenario_caps(scenario, n);
            let config = GameConfig::with_d(2);
            group.bench_function(BenchmarkId::new(format!("batched_{scenario}"), n), |b| {
                let mut game = config.build(&caps, bnb_bench::BENCH_SEED);
                b.iter(|| {
                    game.throw_many(BALLS_PER_ITER);
                    game.reset();
                    black_box(game.bins().total_capacity())
                });
            });
            group.bench_function(BenchmarkId::new(format!("scalar_{scenario}"), n), |b| {
                let mut game = config.build(&caps, bnb_bench::BENCH_SEED);
                b.iter(|| {
                    for _ in 0..BALLS_PER_ITER {
                        game.throw();
                    }
                    game.reset();
                    black_box(game.bins().total_capacity())
                });
            });
        }
    }
    group.finish();
}

/// The generic batched path across `d`, outside the monomorphized kernel.
fn generic_batch_d_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("throw_kernel_generic");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(BALLS_PER_ITER));
    let caps = scenario_caps("two_class", 100_000);
    for d in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("paper_d", d), &d, |b, &d| {
            let config = GameConfig::with_d(d);
            let mut game = config.build(&caps, bnb_bench::BENCH_SEED);
            b.iter(|| {
                game.throw_many(BALLS_PER_ITER);
                game.reset();
                black_box(game.bins().total_capacity())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, kernel_vs_scalar, generic_batch_d_sweep);
criterion_main!(benches);
