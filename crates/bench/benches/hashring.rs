//! Consistent-hashing substrate throughput: ring construction, successor
//! lookups, Chord finger-table lookups, and the Byers d-point game.

use bnb_distributions::Xoshiro256PlusPlus;
use bnb_hashring::{ByersGame, ChordOverlay, HashRing};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const LOOKUPS: u64 = 10_000;

fn ring_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("build_1vnode", n), &n, |b, &n| {
            b.iter(|| black_box(HashRing::new(n, 1, bnb_bench::BENCH_SEED)));
        });
        let ring = HashRing::new(n, 1, bnb_bench::BENCH_SEED);
        group.throughput(Throughput::Elements(LOOKUPS));
        group.bench_with_input(BenchmarkId::new("successor", n), &n, |b, _| {
            let mut rng = Xoshiro256PlusPlus::from_u64_seed(1);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..LOOKUPS {
                    acc = acc.wrapping_add(ring.successor(rng.next()));
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn chord_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    let ring = HashRing::new(10_000, 1, bnb_bench::BENCH_SEED);
    let overlay = ChordOverlay::new(ring);
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("lookup_10k_nodes", |b| {
        let mut rng = Xoshiro256PlusPlus::from_u64_seed(2);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1_000 {
                let start = rng.next_below(10_000) as usize;
                acc = acc.wrapping_add(overlay.lookup(start, rng.next()).hops);
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn byers_game(c: &mut Criterion) {
    let mut group = c.benchmark_group("byers");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(10_000));
    for d in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("throw_10k", d), &d, |b, &d| {
            let ring = HashRing::new(10_000, 1, bnb_bench::BENCH_SEED);
            b.iter(|| {
                let mut rng = Xoshiro256PlusPlus::from_u64_seed(3);
                let mut game = ByersGame::new(ring.clone(), d, bnb_bench::BENCH_SEED);
                game.throw_many(10_000, &mut rng);
                black_box(game.max_load())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ring_ops, chord_lookups, byers_game);
criterion_main!(benches);
