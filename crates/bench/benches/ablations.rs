//! Design-choice ablations (DESIGN.md §5).
//!
//! These measure *solution quality* (mean maximum load), not speed: each
//! "benchmark" iteration runs a batch of seeded games and black-boxes the
//! mean max load, so criterion's timing doubles as a regression guard on
//! the simulation cost of each variant, while the printed summaries in
//! EXPERIMENTS.md record the quality numbers.
//!
//! Variants:
//! * Algorithm 1 vs. no-capacity-tie-break vs. prior-load greedy
//! * proportional vs. uniform selection probabilities
//! * d ∈ {1, 2, 3, 4}
//! * with-replacement vs. distinct candidate draws

use bnb_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const REPS: u64 = 20;

fn mean_max_load(caps: &CapacityVector, config: &GameConfig) -> f64 {
    let mut total = 0.0;
    for rep in 0..REPS {
        let bins = run_game(caps, caps.total(), config, bnb_bench::BENCH_SEED ^ rep);
        total += bins.max_load().as_f64();
    }
    total / REPS as f64
}

fn tie_break_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tie_break");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let caps = CapacityVector::two_class(500, 1, 500, 10);
    for (name, policy) in [
        ("algorithm1", Policy::PaperProtocol),
        ("no_capacity_tiebreak", Policy::LeastLoadedPost),
        ("prior_load", Policy::LeastLoadedPrior),
        ("fewest_balls", Policy::FewestBalls),
    ] {
        group.bench_function(name, |b| {
            let config = GameConfig::with_d(2).policy(policy);
            b.iter(|| black_box(mean_max_load(&caps, &config)));
        });
    }
    group.finish();
}

fn selection_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_selection");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let caps = CapacityVector::two_class(500, 1, 500, 10);
    for (name, selection) in [
        ("proportional", Selection::ProportionalToCapacity),
        ("uniform", Selection::Uniform),
        ("power_1.5", Selection::CapacityPower(1.5)),
        ("power_2.0", Selection::CapacityPower(2.0)),
    ] {
        group.bench_function(name, |b| {
            let config = GameConfig::with_d(2).selection(selection.clone());
            b.iter(|| black_box(mean_max_load(&caps, &config)));
        });
    }
    group.finish();
}

fn d_sweep_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_d");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let caps = CapacityVector::two_class(500, 1, 500, 10);
    for d in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let config = GameConfig::with_d(d);
            b.iter(|| black_box(mean_max_load(&caps, &config)));
        });
    }
    group.finish();
}

fn replacement_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_choice_mode");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let caps = CapacityVector::two_class(500, 1, 500, 10);
    for (name, mode) in [
        ("with_replacement", ChoiceMode::WithReplacement),
        ("distinct", ChoiceMode::Distinct),
    ] {
        group.bench_function(name, |b| {
            let config = GameConfig::with_d(2).choice_mode(mode);
            b.iter(|| black_box(mean_max_load(&caps, &config)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    tie_break_ablation,
    selection_ablation,
    d_sweep_ablation,
    replacement_ablation
);
criterion_main!(benches);
