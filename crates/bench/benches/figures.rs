//! One criterion bench per paper figure.
//!
//! These benches run each figure's workload at a strongly reduced scale
//! (the statistics live in the `repro` binary; here we measure that the
//! figure pipeline — capacity generation, alias-table build, throw loop,
//! aggregation — performs). Every figure of the paper appears as one
//! benchmark, so `cargo bench` exercises the complete reproduction
//! surface.

use bnb_experiments::{registry, Ctx};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ctx() -> Ctx {
    Ctx {
        master_seed: bnb_bench::BENCH_SEED,
        rep_factor: 0.02,
        size_factor: 0.05,
        ball_budget: 100_000,
    }
}

fn figures(c: &mut Criterion) {
    let ctx = bench_ctx();
    let mut group = c.benchmark_group("figures");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for spec in registry() {
        group.bench_function(spec.id, |b| {
            b.iter(|| black_box((spec.run)(&ctx)));
        });
    }
    group.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
