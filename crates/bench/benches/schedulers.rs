//! Scheduler shoot-out on the simulation-shaped hold pattern: the same
//! population-64 "pop the minimum, reschedule it at `now + Exp`" drive
//! across every scheduler in the workspace, so one report ranks the
//! calendar wheel, the binary heap, the eager tournament board and the
//! slot-keyed lazy board side by side (the decision record behind the
//! fused loop's departure path — `hotprof`'s `hold(64)` cells give the
//! same numbers as flat ns/op).

use bnb_distributions::{ExponentialBlock, Xoshiro256PlusPlus};
use bnb_queueing::events::EventScheduler;
use bnb_queueing::{CalendarQueue, EventQueue, LazyBoard, SlotBoard};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Pending departures held live — one per server of a 64-slot fleet.
const POPULATION: u32 = 64;
/// Schedule+pop pairs per measured iteration.
const PAIRS: u64 = 100_000;

fn hold_pattern(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(PAIRS));
    group.bench_function(BenchmarkId::new("hold64", "calendar"), |b| {
        b.iter(|| {
            let mut exp =
                ExponentialBlock::new(Xoshiro256PlusPlus::from_u64_seed(bnb_bench::BENCH_SEED));
            let mut q: CalendarQueue<u32> = CalendarQueue::new();
            for i in 0..POPULATION {
                q.schedule(exp.next(), i);
            }
            for _ in 0..PAIRS {
                let (t, s) = q.pop().unwrap();
                q.schedule(t + exp.next(), s);
            }
            black_box(q.len())
        });
    });
    group.bench_function(BenchmarkId::new("hold64", "heap"), |b| {
        b.iter(|| {
            let mut exp =
                ExponentialBlock::new(Xoshiro256PlusPlus::from_u64_seed(bnb_bench::BENCH_SEED));
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..POPULATION {
                q.schedule(exp.next(), i);
            }
            for _ in 0..PAIRS {
                let (t, s) = q.pop().unwrap();
                q.schedule(t + exp.next(), s);
            }
            black_box(q.len())
        });
    });
    group.bench_function(BenchmarkId::new("hold64", "board"), |b| {
        b.iter(|| {
            let mut exp =
                ExponentialBlock::new(Xoshiro256PlusPlus::from_u64_seed(bnb_bench::BENCH_SEED));
            let mut q = SlotBoard::new(POPULATION as usize);
            for i in 0..POPULATION {
                q.schedule(i, exp.next());
            }
            for _ in 0..PAIRS {
                let (t, s) = q.pop().unwrap();
                q.schedule(s, t + exp.next());
            }
            black_box(q.len())
        });
    });
    group.bench_function(BenchmarkId::new("hold64", "lazy"), |b| {
        b.iter(|| {
            let mut exp =
                ExponentialBlock::new(Xoshiro256PlusPlus::from_u64_seed(bnb_bench::BENCH_SEED));
            let mut q = LazyBoard::with_slots(POPULATION as usize);
            for i in 0..POPULATION {
                q.schedule(i, exp.next());
            }
            for _ in 0..PAIRS {
                let (t, s) = q.pop().unwrap();
                q.schedule(s, t + exp.next());
            }
            black_box(q.len())
        });
    });
    group.finish();
}

criterion_group!(benches, hold_pattern);
criterion_main!(benches);
