//! Core-operation throughput: the throw loop across policies, `d`, and
//! selection models, plus metric extraction. Reported with element
//! throughput (balls/s); this determines how far the Monte-Carlo harness
//! scales.

use bnb_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const N_BINS: usize = 10_000;
const BALLS_PER_ITER: u64 = 10_000;

fn throw_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("throw_loop");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(BALLS_PER_ITER));

    // d sweep on the paper's default config (mixed bins, Algorithm 1).
    let caps = CapacityVector::two_class(N_BINS / 2, 1, N_BINS / 2, 8);
    for d in [1usize, 2, 3, 4, 8] {
        group.bench_with_input(BenchmarkId::new("paper_protocol_d", d), &d, |b, &d| {
            let config = GameConfig::with_d(d);
            b.iter(|| {
                let mut game = config.build(&caps, bnb_bench::BENCH_SEED);
                game.throw_many(BALLS_PER_ITER);
                black_box(game.bins().total_balls())
            });
        });
    }

    // Policy sweep at d = 2.
    for (name, policy) in [
        ("paper_protocol", Policy::PaperProtocol),
        ("least_loaded_post", Policy::LeastLoadedPost),
        ("least_loaded_prior", Policy::LeastLoadedPrior),
        ("fewest_balls", Policy::FewestBalls),
        ("random_of_chosen", Policy::RandomOfChosen),
    ] {
        group.bench_function(BenchmarkId::new("policy", name), |b| {
            let config = GameConfig::with_d(2).policy(policy);
            b.iter(|| {
                let mut game = config.build(&caps, bnb_bench::BENCH_SEED);
                game.throw_many(BALLS_PER_ITER);
                black_box(game.bins().total_balls())
            });
        });
    }

    // Selection sweep at d = 2 (uniform vs proportional vs tilted).
    for (name, selection) in [
        ("uniform", Selection::Uniform),
        ("proportional", Selection::ProportionalToCapacity),
        ("power_2.0", Selection::CapacityPower(2.0)),
    ] {
        group.bench_function(BenchmarkId::new("selection", name), |b| {
            let config = GameConfig::with_d(2).selection(selection.clone());
            b.iter(|| {
                let mut game = config.build(&caps, bnb_bench::BENCH_SEED);
                game.throw_many(BALLS_PER_ITER);
                black_box(game.bins().total_balls())
            });
        });
    }
    group.finish();
}

fn metrics_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.warm_up_time(std::time::Duration::from_millis(800));
    group.measurement_time(std::time::Duration::from_secs(2));
    let caps = CapacityVector::two_class(N_BINS / 2, 1, N_BINS / 2, 8);
    let bins = run_game(&caps, caps.total(), &GameConfig::default(), 7);
    group.bench_function("max_load", |b| {
        b.iter(|| black_box(bins.max_load()));
    });
    group.bench_function("normalized_loads", |b| {
        b.iter(|| black_box(bins.normalized_loads_f64()));
    });
    group.bench_function("max_load_bins", |b| {
        b.iter(|| black_box(bins.max_load_bins()));
    });
    group.finish();
}

criterion_group!(benches, throw_loop, metrics_extraction);
criterion_main!(benches);
