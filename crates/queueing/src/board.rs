//! A slot-keyed departure board: a tournament tree over a fixed slot
//! universe, for schedulers whose population is "at most one pending
//! event per slot".
//!
//! The cluster hot loop schedules exactly one service completion per
//! busy server (a join that starts service schedules it; a departure
//! that leaves work behind reschedules it), so its future-event set is
//! keyed by server slot over a fixed universe. A general scheduler —
//! binary heap, calendar wheel — pays for machinery that workload never
//! uses: arbitrary population, arbitrary keys, dynamic geometry. The
//! [`SlotBoard`] specialises:
//!
//! * one dense `u128` key per slot — the event time's bit pattern,
//!   remapped so the unsigned integer order of the top 64 bits matches
//!   `f64` order (the radix-sort float trick), concatenated with the
//!   insertion sequence — so a full `(time, seq)` comparison is a
//!   single integer compare, and an idle slot is `u128::MAX`, which
//!   loses to every live entry with no special casing;
//! * a complete binary **tournament tree** of `u32` winner indices over
//!   those keys — for a 64-slot fleet the whole structure is two dense
//!   arrays under a kilobyte that never leave L1, with no allocation,
//!   hashing, pointer chasing, bucket-index math or occupancy
//!   bookkeeping on any path;
//! * `schedule`/`pop` replay the `log2 n` tournament rounds from the
//!   changed leaf by the **register-carry walk**: the running winner
//!   stays in a register and each round compares it against the
//!   *sibling* subtree's stored winner — a node the walk never writes —
//!   so the rounds carry no store-to-load dependency and the sibling
//!   loads (whose addresses are pure index arithmetic) issue ahead of
//!   the compare chain;
//! * `peek`/bounded-pop checks are one root read, so the drive loop's
//!   "any departure before the next arrival?" test costs a compare.
//!
//! Determinism: pops are ordered by `(time, insertion sequence)` —
//! byte-for-byte the order of [`EventQueue`](crate::EventQueue) and
//! [`CalendarQueue`](crate::CalendarQueue) — because the key encoding
//! is lexicographic in exactly those fields. The property tests drive
//! the board against the binary-heap oracle through random schedules
//! (exact-time tie storms included) and require identical output
//! streams.
//!
//! **Measured outcome**: on the simulation-shaped hold pattern
//! (population 64, schedule at `now + Exp`) the board's `log2 n`
//! compare rounds per operation *lose* to the calendar wheel's ~O(1)
//! bucket hit by roughly its tree depth — ~75 ns vs ~45 ns per
//! schedule+pop pair on the bench host (`hotprof`'s `board hold(64)`
//! vs `calendar hold(64)` cells) — because it pays the full tournament
//! **eagerly on every schedule and every pop**. The
//! [`LazyBoard`](crate::LazyBoard) exploits the same slot-keyed
//! invariant lazily (two stores per schedule, candidate-ring
//! validation per pop) and beats both; the cluster's fused drive loop
//! runs on it. The tournament board is kept as the **naive eager
//! baseline** of the scheduler-comparison bench — the measured answer
//! to "why lazy deletion?" — and as a correct, allocation-free
//! alternative for embeddings that want strict per-operation bounds
//! with no rebuild scans.

use crate::events::Time;

/// Key of an idle slot: `u128::MAX` is strictly greater than every live
/// key (live keys carry a finite-time prefix below `0xFFFF…` and a
/// sequence below `u64::MAX`), so idle slots lose every round.
const IDLE_KEY: u128 = u128::MAX;

/// Remaps an `f64`'s bits so unsigned integer order matches numeric
/// order: positive floats get the sign bit set, negative floats are
/// bitwise complemented (the classic radix-sort float map).
#[inline]
fn monotone_bits(t: Time) -> u64 {
    let b = t.to_bits();
    let mask = (((b as i64) >> 63) as u64) | (1 << 63);
    b ^ mask
}

/// A fixed-universe, slot-keyed event scheduler: at most one pending
/// `(time, slot)` entry per slot, popped in `(time, insertion
/// sequence)` order via a tournament tree.
///
/// Not an [`EventScheduler`](crate::EventScheduler): the payload *is*
/// the slot key, and scheduling a slot that already has a pending entry
/// is a caller bug (checked in debug builds). Use it where the
/// one-entry-per-slot invariant holds structurally — per-server service
/// completions in the cluster drive loops.
#[derive(Debug, Clone)]
pub struct SlotBoard {
    /// Packed `(monotone time bits, insertion seq)` per slot;
    /// [`IDLE_KEY`] when idle.
    keys: Vec<u128>,
    /// Pending event time per slot (stale once popped — only read while
    /// the slot is the root winner, which implies it is live).
    times: Vec<Time>,
    /// Tournament tree of winner slot indices: `tree[1]` is the overall
    /// winner, node `i`'s children are `2i` and `2i + 1`, and the
    /// conceptual leaf of slot `s` sits at position `leaves + s`.
    /// `tree[0]` is unused.
    tree: Vec<u32>,
    /// Number of leaves (slot count rounded up to a power of two).
    leaves: usize,
    /// Live entries.
    len: usize,
    /// Next insertion sequence number.
    seq: u64,
}

impl SlotBoard {
    /// Creates a board for slots `0..slots`, all idle.
    ///
    /// # Panics
    /// Panics if `slots` is zero or exceeds `u32::MAX / 2` (slot
    /// indices live in `u32` tree nodes).
    #[must_use]
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "slot board needs at least one slot");
        assert!(
            slots <= (u32::MAX / 2) as usize,
            "slot board exceeds u32 indexing"
        );
        let leaves = slots.next_power_of_two();
        let mut board = SlotBoard {
            keys: vec![IDLE_KEY; slots],
            times: vec![Time::INFINITY; slots],
            tree: vec![0; leaves.max(2)],
            leaves,
            len: 0,
            seq: 0,
        };
        // Bottom-up rebuild; incremental replays keep it consistent
        // from here on. Leaf positions past `slots` (power-of-two
        // padding) clamp to the last real slot — safe, because any node
        // covering both real and padded leaves necessarily covers the
        // last real slot's leaf and is therefore on its replay path,
        // while nodes covering only padding hold that slot forever,
        // which is exactly the winner of a subtree of its duplicates.
        for node in (1..board.tree.len()).rev() {
            let child = node * 2;
            let (l, r) = if child >= board.leaves.max(2) {
                let clamp = board.keys.len() - 1;
                (
                    (child - board.leaves).min(clamp) as u32,
                    (child + 1 - board.leaves).min(clamp) as u32,
                )
            } else {
                (board.tree[child], board.tree[child + 1])
            };
            board.tree[node] = if board.keys[l as usize] <= board.keys[r as usize] {
                l
            } else {
                r
            };
        }
        board
    }

    /// Number of slots the board covers.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Live entries on the board.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the board has no pending entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Replays the tournament rounds from `slot`'s leaf to the root
    /// after its key changed: the running winner rides in a register
    /// and each round compares it against the sibling subtree's stored
    /// winner, which this walk never writes — no store-to-load
    /// dependency between rounds.
    #[inline]
    fn replay(&mut self, slot: u32) {
        let mut w = slot;
        let mut kw = self.keys[slot as usize];
        let mut node = self.leaves + slot as usize;
        while node > 1 {
            let sib = node ^ 1;
            let s = if sib >= self.leaves {
                ((sib - self.leaves).min(self.keys.len() - 1)) as u32
            } else {
                self.tree[sib]
            };
            let ks = self.keys[s as usize];
            // Branchless select: the winner of each round is data-
            // dependent coin-flip randomness, so a conditional move
            // beats a ~50% mispredicted branch.
            let take = ks < kw;
            let mask = u128::from(take).wrapping_neg();
            kw = (ks & mask) | (kw & !mask);
            w = if take { s } else { w };
            node >>= 1;
            self.tree[node] = w;
        }
    }

    /// Schedules `slot`'s pending event at `time`.
    ///
    /// # Panics
    /// Panics if `time` is not finite or `slot` is out of range; debug
    /// builds also reject a slot that already has a pending entry (the
    /// one-entry-per-slot invariant).
    #[inline]
    pub fn schedule(&mut self, slot: u32, time: Time) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        debug_assert!(
            self.keys[slot as usize] == IDLE_KEY,
            "slot {slot} already has a pending entry"
        );
        self.keys[slot as usize] = (u128::from(monotone_bits(time)) << 64) | u128::from(self.seq);
        self.times[slot as usize] = time;
        self.seq += 1;
        self.len += 1;
        self.replay(slot);
    }

    /// Time of the earliest pending entry.
    #[inline]
    #[must_use]
    pub fn peek(&self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        Some(self.times[self.tree[1] as usize])
    }

    /// Pops the earliest `(time, seq)` entry as `(time, slot)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, u32)> {
        if self.len == 0 {
            return None;
        }
        let slot = self.tree[1];
        let time = self.times[slot as usize];
        self.keys[slot as usize] = IDLE_KEY;
        self.len -= 1;
        self.replay(slot);
        Some((time, slot))
    }

    /// Pops the earliest entry if it is strictly before `bound`
    /// (arrival merges: the bound wins exact ties).
    #[inline]
    pub fn pop_if_before(&mut self, bound: Time) -> Option<(Time, u32)> {
        if self.len == 0 {
            return None;
        }
        let slot = self.tree[1];
        let time = self.times[slot as usize];
        if time >= bound {
            return None;
        }
        self.keys[slot as usize] = IDLE_KEY;
        self.len -= 1;
        self.replay(slot);
        Some((time, slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventQueue, EventScheduler};

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut b = SlotBoard::new(8);
        b.schedule(3, 5.0);
        b.schedule(1, 2.0);
        b.schedule(4, 2.0);
        b.schedule(0, 9.0);
        assert_eq!(b.peek(), Some(2.0));
        assert_eq!(b.pop(), Some((2.0, 1)), "earlier seq wins the tie");
        assert_eq!(b.pop(), Some((2.0, 4)));
        assert_eq!(b.pop(), Some((5.0, 3)));
        assert_eq!(b.pop(), Some((9.0, 0)));
        assert_eq!(b.pop(), None);
        assert!(b.is_empty());
    }

    #[test]
    fn pop_if_before_respects_the_bound_and_ties() {
        let mut b = SlotBoard::new(4);
        b.schedule(2, 1.0);
        b.schedule(0, 2.0);
        assert_eq!(b.pop_if_before(0.5), None);
        assert_eq!(b.pop_if_before(1.0), None, "ties are not popped");
        assert_eq!(b.pop_if_before(1.5), Some((1.0, 2)));
        assert_eq!(b.pop_if_before(f64::MAX), Some((2.0, 0)));
        assert_eq!(b.pop_if_before(f64::MAX), None, "empty");
    }

    #[test]
    fn reschedule_after_pop_reuses_the_slot() {
        let mut b = SlotBoard::new(3);
        b.schedule(1, 1.0);
        assert_eq!(b.pop(), Some((1.0, 1)));
        b.schedule(1, 0.5);
        b.schedule(2, 0.5);
        assert_eq!(b.pop(), Some((0.5, 1)), "re-armed slot keeps seq order");
        assert_eq!(b.pop(), Some((0.5, 2)));
    }

    #[test]
    fn negative_and_zero_times_order_correctly() {
        // The monotone bit map must order the full finite f64 line,
        // sign bit included.
        let mut b = SlotBoard::new(4);
        b.schedule(0, 0.0);
        b.schedule(1, -3.5);
        b.schedule(2, 2.0);
        b.schedule(3, -0.0);
        assert_eq!(b.pop(), Some((-3.5, 1)));
        // total_cmp order, like the general schedulers: -0.0 < 0.0.
        assert_eq!(b.pop(), Some((-0.0, 3)));
        assert_eq!(b.pop(), Some((0.0, 0)));
        assert_eq!(b.pop(), Some((2.0, 2)));
    }

    #[test]
    fn non_power_of_two_universe() {
        let mut b = SlotBoard::new(5);
        for s in 0..5u32 {
            b.schedule(s, (10 - s) as f64);
        }
        let order: Vec<u32> = std::iter::from_fn(|| b.pop()).map(|(_, s)| s).collect();
        assert_eq!(order, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn single_slot_board() {
        let mut b = SlotBoard::new(1);
        b.schedule(0, 7.0);
        assert_eq!(b.peek(), Some(7.0));
        assert_eq!(b.pop(), Some((7.0, 0)));
        assert_eq!(b.pop(), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_time_rejected() {
        let mut b = SlotBoard::new(2);
        b.schedule(0, f64::INFINITY);
    }

    #[test]
    fn matches_binary_heap_on_a_hold_workload() {
        // A simulation-shaped drive against the heap oracle: random
        // schedules over a 64-slot universe with exact-tie bursts,
        // popped in lockstep.
        let mut board = SlotBoard::new(64);
        let mut heap: EventQueue<u32> = EventQueue::new();
        let mut pending = [false; 64];
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0.0f64;
        for step in 0..50_000 {
            let slot = (rng() % 64) as u32;
            if !pending[slot as usize] {
                // Quantised offsets force frequent exact ties.
                let t = now + (rng() % 16) as f64 * 0.25;
                board.schedule(slot, t);
                EventScheduler::schedule(&mut heap, t, slot);
                pending[slot as usize] = true;
            }
            if step % 2 == 0 {
                let a = board.pop();
                let b = EventScheduler::pop(&mut heap);
                assert_eq!(a, b, "divergence at step {step}");
                if let Some((t, s)) = a {
                    now = now.max(t);
                    pending[s as usize] = false;
                }
            }
            assert_eq!(board.len(), EventScheduler::len(&heap));
        }
        loop {
            let a = board.pop();
            let b = EventScheduler::pop(&mut heap);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
