//! Scheduler-internals telemetry: the always-on [`CalendarStats`]
//! block every [`CalendarQueue`](crate::CalendarQueue) maintains, and
//! the [`LazyStats`] block every [`LazyBoard`](crate::LazyBoard)
//! maintains.
//!
//! The calendar counters live on the **amortised** paths only — ring
//! refills, spills, bulk-commit drains, rebuilds — never on the
//! per-event schedule/pop fast path, so they are plain `u64` increments
//! paid once per batch. The lazy-board counters additionally sit on the
//! *deviation* branches of its hot path (an overwrite, a stale
//! discard), which the dominant one-pending-per-slot workload never
//! takes — so the common schedule/pop pair still pays nothing. Both
//! blocks are cheap enough to keep on unconditionally (no registry
//! gate), and entirely wall-clock/RNG-free, so they cannot perturb a
//! simulated schedule.

use bnb_stats::Mergeable;
use bnb_telemetry::{Log2Histogram, MetricsSnapshot};

/// Internals counters of one [`CalendarQueue`](crate::CalendarQueue):
/// the mechanism fingerprint behind its amortised-O(1) claim. Harvest
/// with [`CalendarStats::record_into`], or merge shards through
/// [`Mergeable`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CalendarStats {
    /// Bulk bring-forward passes (each amortises one bucket scan over
    /// up to `RING_REFILL` pops).
    pub ring_refills: u64,
    /// Inside-horizon inserts that overflowed `RING_MAX` and pushed the
    /// ring's farthest entry back toward the wheel.
    pub ring_spills: u64,
    /// Entries drained from the bulk-commit buffer into the wheel
    /// (deferred per-schedule wheel work, paid in batches).
    pub pending_drained: u64,
    /// Geometry rebuilds: grows, shrinks and window advances over the
    /// overflow ladder.
    pub rebuilds: u64,
    /// Chain length of each occupied bucket, sampled at every rebuild —
    /// the sparse-geometry health check (mostly-singleton chains keep
    /// the pop scan branch-predictable).
    pub bucket_occupancy: Log2Histogram,
    /// Pending-event population at each rebuild (how big the wheel was
    /// when it turned).
    pub population_at_rebuild: Log2Histogram,
}

impl CalendarStats {
    /// A zeroed stats block.
    #[must_use]
    pub fn new() -> Self {
        CalendarStats::default()
    }

    /// Harvests this block into a [`MetricsSnapshot`] under
    /// `calendar.*` metric names.
    pub fn record_into(&self, snapshot: &mut MetricsSnapshot) {
        snapshot.add_counter("calendar.ring_refills", self.ring_refills);
        snapshot.add_counter("calendar.ring_spills", self.ring_spills);
        snapshot.add_counter("calendar.pending_drained", self.pending_drained);
        snapshot.add_counter("calendar.rebuilds", self.rebuilds);
        snapshot.add_histogram("calendar.bucket_occupancy", &self.bucket_occupancy);
        snapshot.add_histogram(
            "calendar.population_at_rebuild",
            &self.population_at_rebuild,
        );
    }
}

impl Mergeable for CalendarStats {
    fn merge_from(&mut self, other: &Self) {
        self.ring_refills += other.ring_refills;
        self.ring_spills += other.ring_spills;
        self.pending_drained += other.pending_drained;
        self.rebuilds += other.rebuilds;
        self.bucket_occupancy.merge_from(&other.bucket_occupancy);
        self.population_at_rebuild
            .merge_from(&other.population_at_rebuild);
    }
}

/// Internals counters of one [`LazyBoard`](crate::LazyBoard): the
/// mechanism fingerprint of slot-keyed lazy deletion. Overwrites
/// measure how much delete work lazy deletion deferred; stale pops and
/// ring drops count where the superseded candidates were finally
/// collected (on bag contact or at a lap refill); rebuild scans and
/// slots scanned price the geometry re-derivations. Harvest with
/// [`LazyStats::record_into`], or merge shards through [`Mergeable`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LazyStats {
    /// Schedules that replaced a still-pending entry for the same slot
    /// — the O(1) lazy reschedule that a heap would pay a
    /// delete-and-reinsert for.
    pub overwrites: u64,
    /// Bag candidates swept at pop time because an overwrite (or the
    /// slot's earlier pop) had invalidated them — the deferred
    /// deletions, finally collected on contact.
    pub stale_pops: u64,
    /// Candidates indexed by schedules — one bag or overflow append
    /// each; never a sorted insert.
    pub ring_inserts: u64,
    /// Candidates found superseded while parked in the overflow vector
    /// and dropped during a lap refill, never reaching a bag.
    pub ring_drops: u64,
    /// Geometry rebuilds: the bag shift re-derived from the live
    /// population's head spread after a bag outgrew its cap.
    pub rebuild_scans: u64,
    /// Slots examined across all geometry rebuilds (each rebuild scans
    /// the full authoritative array once).
    pub slots_scanned: u64,
}

impl LazyStats {
    /// A zeroed stats block.
    #[must_use]
    pub fn new() -> Self {
        LazyStats::default()
    }

    /// Harvests this block into a [`MetricsSnapshot`] under `lazy.*`
    /// metric names.
    pub fn record_into(&self, snapshot: &mut MetricsSnapshot) {
        snapshot.add_counter("lazy.overwrites", self.overwrites);
        snapshot.add_counter("lazy.stale_pops", self.stale_pops);
        snapshot.add_counter("lazy.ring_inserts", self.ring_inserts);
        snapshot.add_counter("lazy.ring_drops", self.ring_drops);
        snapshot.add_counter("lazy.rebuild_scans", self.rebuild_scans);
        snapshot.add_counter("lazy.slots_scanned", self.slots_scanned);
    }
}

impl Mergeable for LazyStats {
    fn merge_from(&mut self, other: &Self) {
        self.overwrites += other.overwrites;
        self.stale_pops += other.stale_pops;
        self.ring_inserts += other.ring_inserts;
        self.ring_drops += other.ring_drops;
        self.rebuild_scans += other.rebuild_scans;
        self.slots_scanned += other.slots_scanned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_merge_and_record_cover_every_field() {
        let mut a = LazyStats::new();
        a.overwrites = 3;
        a.stale_pops = 2;
        a.slots_scanned = 64;
        let mut b = LazyStats::new();
        b.overwrites = 1;
        b.ring_drops = 5;
        b.rebuild_scans = 7;
        b.ring_inserts = 9;
        a.merge_from(&b);
        let mut snap = MetricsSnapshot::new();
        a.record_into(&mut snap);
        assert_eq!(snap.counter("lazy.overwrites"), Some(4));
        assert_eq!(snap.counter("lazy.stale_pops"), Some(2));
        assert_eq!(snap.counter("lazy.ring_inserts"), Some(9));
        assert_eq!(snap.counter("lazy.ring_drops"), Some(5));
        assert_eq!(snap.counter("lazy.rebuild_scans"), Some(7));
        assert_eq!(snap.counter("lazy.slots_scanned"), Some(64));
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CalendarStats::new();
        a.ring_refills = 2;
        a.rebuilds = 1;
        a.bucket_occupancy.record(1);
        let mut b = CalendarStats::new();
        b.ring_refills = 3;
        b.pending_drained = 10;
        b.bucket_occupancy.record(4);
        a.merge_from(&b);
        assert_eq!(a.ring_refills, 5);
        assert_eq!(a.pending_drained, 10);
        assert_eq!(a.rebuilds, 1);
        assert_eq!(a.bucket_occupancy.count(), 2);
    }

    #[test]
    fn record_into_names_every_field() {
        let mut s = CalendarStats::new();
        s.ring_spills = 7;
        s.population_at_rebuild.record(100);
        let mut snap = MetricsSnapshot::new();
        s.record_into(&mut snap);
        assert_eq!(snap.counter("calendar.ring_spills"), Some(7));
        assert_eq!(snap.counter("calendar.rebuilds"), Some(0));
        assert_eq!(
            snap.histogram("calendar.population_at_rebuild")
                .unwrap()
                .count(),
            1
        );
    }
}
