//! Scheduler-internals telemetry: the always-on [`CalendarStats`]
//! block every [`CalendarQueue`](crate::CalendarQueue) maintains.
//!
//! The counters live on the **amortised** paths only — ring refills,
//! spills, bulk-commit drains, rebuilds — never on the per-event
//! schedule/pop fast path, so they are plain `u64` increments paid once
//! per batch: cheap enough to keep on unconditionally (no registry
//! gate), and entirely wall-clock/RNG-free, so they cannot perturb a
//! simulated schedule.

use bnb_stats::Mergeable;
use bnb_telemetry::{Log2Histogram, MetricsSnapshot};

/// Internals counters of one [`CalendarQueue`](crate::CalendarQueue):
/// the mechanism fingerprint behind its amortised-O(1) claim. Harvest
/// with [`CalendarStats::record_into`], or merge shards through
/// [`Mergeable`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CalendarStats {
    /// Bulk bring-forward passes (each amortises one bucket scan over
    /// up to `RING_REFILL` pops).
    pub ring_refills: u64,
    /// Inside-horizon inserts that overflowed `RING_MAX` and pushed the
    /// ring's farthest entry back toward the wheel.
    pub ring_spills: u64,
    /// Entries drained from the bulk-commit buffer into the wheel
    /// (deferred per-schedule wheel work, paid in batches).
    pub pending_drained: u64,
    /// Geometry rebuilds: grows, shrinks and window advances over the
    /// overflow ladder.
    pub rebuilds: u64,
    /// Chain length of each occupied bucket, sampled at every rebuild —
    /// the sparse-geometry health check (mostly-singleton chains keep
    /// the pop scan branch-predictable).
    pub bucket_occupancy: Log2Histogram,
    /// Pending-event population at each rebuild (how big the wheel was
    /// when it turned).
    pub population_at_rebuild: Log2Histogram,
}

impl CalendarStats {
    /// A zeroed stats block.
    #[must_use]
    pub fn new() -> Self {
        CalendarStats::default()
    }

    /// Harvests this block into a [`MetricsSnapshot`] under
    /// `calendar.*` metric names.
    pub fn record_into(&self, snapshot: &mut MetricsSnapshot) {
        snapshot.add_counter("calendar.ring_refills", self.ring_refills);
        snapshot.add_counter("calendar.ring_spills", self.ring_spills);
        snapshot.add_counter("calendar.pending_drained", self.pending_drained);
        snapshot.add_counter("calendar.rebuilds", self.rebuilds);
        snapshot.add_histogram("calendar.bucket_occupancy", &self.bucket_occupancy);
        snapshot.add_histogram(
            "calendar.population_at_rebuild",
            &self.population_at_rebuild,
        );
    }
}

impl Mergeable for CalendarStats {
    fn merge_from(&mut self, other: &Self) {
        self.ring_refills += other.ring_refills;
        self.ring_spills += other.ring_spills;
        self.pending_drained += other.pending_drained;
        self.rebuilds += other.rebuilds;
        self.bucket_occupancy.merge_from(&other.bucket_occupancy);
        self.population_at_rebuild
            .merge_from(&other.population_at_rebuild);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters() {
        let mut a = CalendarStats::new();
        a.ring_refills = 2;
        a.rebuilds = 1;
        a.bucket_occupancy.record(1);
        let mut b = CalendarStats::new();
        b.ring_refills = 3;
        b.pending_drained = 10;
        b.bucket_occupancy.record(4);
        a.merge_from(&b);
        assert_eq!(a.ring_refills, 5);
        assert_eq!(a.pending_drained, 10);
        assert_eq!(a.rebuilds, 1);
        assert_eq!(a.bucket_occupancy.count(), 2);
    }

    #[test]
    fn record_into_names_every_field() {
        let mut s = CalendarStats::new();
        s.ring_spills = 7;
        s.population_at_rebuild.record(100);
        let mut snap = MetricsSnapshot::new();
        s.record_into(&mut snap);
        assert_eq!(snap.counter("calendar.ring_spills"), Some(7));
        assert_eq!(snap.counter("calendar.rebuilds"), Some(0));
        assert_eq!(
            snap.histogram("calendar.population_at_rebuild")
                .unwrap()
                .count(),
            1
        );
    }
}
