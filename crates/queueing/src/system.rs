//! The queueing simulator: Poisson arrivals into d-choice routed,
//! heterogeneous-speed servers.

use crate::calendar::CalendarQueue;
use crate::events::{Event, EventScheduler, Time};
use crate::router::RoutingPolicy;
use crate::server::{Admission, Server};
use bnb_core::choice::{draw_candidates, ChoiceMode, Selection, MAX_D};
use bnb_core::CapacityVector;
use bnb_distributions::{AliasTable, Exponential, Xoshiro256PlusPlus};

/// Configuration of a queueing run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of candidate servers sampled per arrival.
    pub d: usize,
    /// Routing rule among the candidates.
    pub routing: RoutingPolicy,
    /// How candidates are sampled (the paper's default: proportional to
    /// speed).
    pub selection: Selection,
    /// Offered utilisation ρ: the arrival rate is `ρ · Σ speed` (each
    /// job carries Exp(1) work, server `i` serves at rate `speed_i`, so
    /// the system-wide service capacity is `Σ speed`). Unbounded queues
    /// require `ρ < 1` for stability; with a finite
    /// [`queue_capacity`](SystemConfig::queue_capacity) any `ρ > 0` is
    /// allowed — overload shows up as drops, not divergence.
    pub rho: f64,
    /// Per-server bound on jobs in the system (queue + in service);
    /// `None` (the default) keeps the queues unbounded.
    pub queue_capacity: Option<u64>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            d: 2,
            routing: RoutingPolicy::ShortestNormalizedQueue,
            selection: Selection::ProportionalToCapacity,
            rho: 0.9,
            queue_capacity: None,
        }
    }
}

/// Steady-state metrics of a finished run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueMetrics {
    /// Time-averaged total jobs in the system divided by `n`.
    pub mean_queue_len: f64,
    /// Largest *normalised* queue (`max_i max-observed q_i / c_i`).
    pub max_normalized_queue: f64,
    /// Largest raw queue length observed on any server.
    pub max_queue_len: u64,
    /// Completed jobs.
    pub completed: u64,
    /// Jobs dropped at full queues (always 0 with unbounded queues).
    pub dropped: u64,
    /// Simulated time horizon.
    pub horizon: Time,
}

/// The discrete-event system, generic over its [`EventScheduler`]; the
/// calendar queue is the monomorphic default, and the binary-heap
/// [`EventQueue`](crate::EventQueue) remains available via
/// [`QueueSystem::with_scheduler`] as the differential oracle. The
/// scheduler contract (earliest-first, FIFO on ties) makes the two
/// bitwise interchangeable.
#[derive(Debug)]
pub struct QueueSystem<Sch: EventScheduler<Event> = CalendarQueue<Event>> {
    servers: Vec<Server>,
    sampler: AliasTable,
    config: SystemConfig,
    events: Sch,
    rng: Xoshiro256PlusPlus,
    arrival_dist: Exponential,
    now: Time,
}

impl QueueSystem {
    /// Builds the system on the given server speeds, scheduling through
    /// the default [`CalendarQueue`].
    ///
    /// # Panics
    /// Panics if `d` is out of range, `rho` is invalid (non-positive, or
    /// `≥ 1` while the queues are unbounded), or the selection weights
    /// are invalid.
    #[must_use]
    pub fn new(speeds: &CapacityVector, config: SystemConfig, seed: u64) -> Self {
        Self::with_scheduler(speeds, config, seed)
    }
}

impl<Sch: EventScheduler<Event>> QueueSystem<Sch> {
    /// Builds the system on an explicit scheduler implementation (same
    /// validation as [`QueueSystem::new`]).
    ///
    /// # Panics
    /// Panics if `d` is out of range, `rho` is invalid (non-positive, or
    /// `≥ 1` while the queues are unbounded), or the selection weights
    /// are invalid.
    #[must_use]
    pub fn with_scheduler(speeds: &CapacityVector, config: SystemConfig, seed: u64) -> Self {
        assert!(config.d >= 1 && config.d <= MAX_D, "d out of range");
        assert!(
            config.rho > 0.0 && config.rho.is_finite(),
            "utilisation must be positive, got {}",
            config.rho
        );
        assert!(
            config.rho < 1.0 || config.queue_capacity.is_some(),
            "utilisation must be in (0,1) for stability with unbounded queues, got {}; \
             set queue_capacity to simulate overload",
            config.rho
        );
        let total_speed: u64 = speeds.total();
        let arrival_rate = config.rho * total_speed as f64;
        let sampler = config.selection.sampler(speeds.as_slice());
        let make_server = |s: u64| match config.queue_capacity {
            Some(cap) => Server::with_queue_capacity(s, cap),
            None => Server::new(s),
        };
        QueueSystem {
            servers: speeds.as_slice().iter().map(|&s| make_server(s)).collect(),
            sampler,
            config,
            events: Sch::new(),
            rng: Xoshiro256PlusPlus::from_u64_seed(seed),
            arrival_dist: Exponential::new(arrival_rate),
            now: 0.0,
        }
    }

    /// Runs until `n_arrivals` jobs have entered, then drains nothing
    /// further (departures after the last arrival still process until the
    /// event list is conceptually cut at the last arrival time).
    /// Returns the metrics at the time of the last processed event.
    pub fn run_arrivals(&mut self, n_arrivals: u64) -> QueueMetrics {
        let mut remaining = n_arrivals;
        // Prime the first arrival.
        let t0 = self.arrival_dist.sample(&mut self.rng);
        self.events.schedule(t0, Event::Arrival);
        while let Some((time, event)) = self.events.pop() {
            self.now = time;
            match event {
                Event::Arrival => {
                    remaining -= 1;
                    self.handle_arrival();
                    if remaining > 0 {
                        let dt = self.arrival_dist.sample(&mut self.rng);
                        self.events.schedule(self.now + dt, Event::Arrival);
                    }
                }
                Event::Departure { server } => {
                    if self.servers[server].depart(self.now) {
                        self.schedule_departure(server);
                    }
                }
            }
        }
        self.metrics()
    }

    fn handle_arrival(&mut self) {
        let mut buf = [0usize; MAX_D];
        let candidates = draw_candidates(
            &self.sampler,
            self.config.d,
            ChoiceMode::WithReplacement,
            &mut self.rng,
            &mut buf,
        );
        let target = self
            .config
            .routing
            .choose(&self.servers, candidates, &mut self.rng);
        if self.servers[target].try_join(self.now) == Admission::StartedService {
            self.schedule_departure(target);
        }
    }

    fn schedule_departure(&mut self, server: usize) {
        // Exp(1) work at rate `speed` => Exp(speed) service time.
        let service = Exponential::new(self.servers[server].speed() as f64).sample(&mut self.rng);
        self.events
            .schedule(self.now + service, Event::Departure { server });
    }

    /// Current metrics snapshot.
    #[must_use]
    pub fn metrics(&self) -> QueueMetrics {
        let n = self.servers.len() as f64;
        let mean = self
            .servers
            .iter()
            .map(|s| s.mean_queue(self.now))
            .sum::<f64>()
            / n;
        let max_norm = self
            .servers
            .iter()
            .map(|s| s.max_queue() as f64 / s.speed() as f64)
            .fold(0.0f64, f64::max);
        QueueMetrics {
            mean_queue_len: mean,
            max_normalized_queue: max_norm,
            max_queue_len: self
                .servers
                .iter()
                .map(Server::max_queue)
                .max()
                .unwrap_or(0),
            completed: self.servers.iter().map(Server::completed).sum(),
            dropped: self.servers.iter().map(Server::dropped).sum(),
            horizon: self.now,
        }
    }

    /// Read access to the servers.
    #[must_use]
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_system(n: usize, rho: f64, d: usize, seed: u64) -> QueueSystem {
        let speeds = CapacityVector::uniform(n, 1);
        let config = SystemConfig {
            d,
            rho,
            ..SystemConfig::default()
        };
        QueueSystem::new(&speeds, config, seed)
    }

    #[test]
    fn all_jobs_complete_eventually() {
        let mut sys = uniform_system(10, 0.5, 2, 1);
        let m = sys.run_arrivals(2_000);
        assert_eq!(m.completed, 2_000);
        assert!(m.horizon > 0.0);
    }

    #[test]
    fn mm1_mean_queue_matches_theory() {
        // A single M/M/1 queue at ρ: E[jobs in system] = ρ/(1-ρ).
        let rho = 0.5;
        let mut sys = uniform_system(1, rho, 1, 42);
        let m = sys.run_arrivals(200_000);
        let expected = rho / (1.0 - rho); // 1.0
        assert!(
            (m.mean_queue_len - expected).abs() < 0.08,
            "mean queue {} vs M/M/1 theory {expected}",
            m.mean_queue_len
        );
    }

    #[test]
    fn two_choices_shrink_the_max_queue() {
        let mut one = uniform_system(200, 0.9, 1, 7);
        let m1 = one.run_arrivals(200_000);
        let mut two = uniform_system(200, 0.9, 2, 7);
        let m2 = two.run_arrivals(200_000);
        assert!(
            m2.max_queue_len < m1.max_queue_len,
            "JSQ(2) max {} should beat random {}",
            m2.max_queue_len,
            m1.max_queue_len
        );
    }

    #[test]
    fn faster_servers_complete_more_jobs() {
        let speeds = CapacityVector::two_class(5, 1, 5, 10);
        let config = SystemConfig {
            rho: 0.8,
            ..SystemConfig::default()
        };
        let mut sys = QueueSystem::new(&speeds, config, 3);
        sys.run_arrivals(50_000);
        let slow: u64 = sys.servers()[..5].iter().map(Server::completed).sum();
        let fast: u64 = sys.servers()[5..].iter().map(Server::completed).sum();
        assert!(
            fast > 5 * slow,
            "fast servers ({fast}) should complete far more than slow ({slow})"
        );
    }

    #[test]
    fn normalized_routing_protects_slow_servers() {
        // With speed-blind JSQ the slow servers build deep *normalised*
        // queues; the paper-style normalised rule keeps them shallow.
        let speeds = CapacityVector::two_class(50, 1, 50, 10);
        let run = |routing: RoutingPolicy, seed: u64| {
            let config = SystemConfig {
                rho: 0.9,
                routing,
                ..SystemConfig::default()
            };
            let mut sys = QueueSystem::new(&speeds, config, seed);
            sys.run_arrivals(150_000).max_normalized_queue
        };
        let normalized = run(RoutingPolicy::ShortestNormalizedQueue, 9);
        let plain = run(RoutingPolicy::ShortestQueue, 9);
        assert!(
            normalized < plain,
            "normalised routing ({normalized}) should beat plain JSQ ({plain})"
        );
    }

    #[test]
    fn determinism_under_seed() {
        let mut a = uniform_system(20, 0.8, 2, 11);
        let mut b = uniform_system(20, 0.8, 2, 11);
        let ma = a.run_arrivals(5_000);
        let mb = b.run_arrivals(5_000);
        assert_eq!(ma, mb);
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn overloaded_system_rejected() {
        let speeds = CapacityVector::uniform(2, 1);
        let _ = QueueSystem::new(
            &speeds,
            SystemConfig {
                rho: 1.5,
                ..Default::default()
            },
            0,
        );
    }
}
