//! The pluggable event-scheduler core: the [`EventScheduler`] trait, its
//! binary-heap reference implementation ([`EventQueue`]), and the
//! simulation clock.
//!
//! ## Determinism contract
//!
//! Every scheduler implementation must pop events in **(time ascending,
//! insertion sequence ascending)** order: the earliest event first, and
//! FIFO among events scheduled for the exact same time. The contract is
//! what makes a simulation a pure function of its seed — swapping the
//! heap for the calendar queue ([`crate::CalendarQueue`]) must not change
//! a single popped `(time, payload)` pair, which the scheduler
//! equivalence property tests pin.

use crate::stats::{CalendarStats, LazyStats};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in abstract units (service requirements are Exp(1),
/// server speeds are jobs-per-unit-time).
pub type Time = f64;

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A new job enters the system.
    Arrival,
    /// The job at the head of `server`'s queue completes.
    Departure {
        /// Index of the completing server.
        server: usize,
    },
}

/// A deterministic future-event list: the scheduling interface of every
/// discrete-event simulator in this workspace.
///
/// Implementations must honour the module-level determinism contract:
/// [`pop`](EventScheduler::pop) returns events ordered by `(time,
/// insertion sequence)`, so two implementations fed the same
/// `schedule`/`pop` call sequence emit identical `(time, payload)`
/// streams. Times must be finite (schedulers may bucket by magnitude).
pub trait EventScheduler<E> {
    /// Creates an empty scheduler.
    fn new() -> Self
    where
        Self: Sized;

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or infinite.
    fn schedule(&mut self, time: Time, event: E);

    /// Pops the earliest event (FIFO among time ties), if any.
    fn pop(&mut self) -> Option<(Time, E)>;

    /// The time of the earliest pending event, without removing it.
    fn peek(&self) -> Option<Time>;

    /// Pops the earliest event only if its time is **strictly before**
    /// `bound`; otherwise leaves the schedule untouched and returns
    /// `None`.
    ///
    /// This is how a simulator merges an externally generated event
    /// stream (e.g. pre-sampled arrival times, which then never enter
    /// the scheduler at all) with the scheduled one: ties go to the
    /// external stream, and implementations can answer with a single
    /// internal scan instead of a `peek` plus a `pop`.
    fn pop_if_before(&mut self, bound: Time) -> Option<(Time, E)> {
        if self.peek().is_some_and(|t| t < bound) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scheduler's internals telemetry, when it keeps any (the
    /// [`CalendarQueue`](crate::CalendarQueue) does; the reference heap
    /// answers `None`). Lets harness code harvest mechanism counters
    /// through the trait without knowing the concrete scheduler.
    fn calendar_stats(&self) -> Option<&CalendarStats> {
        None
    }

    /// The scheduler's lazy-deletion telemetry, when it keeps any (the
    /// [`LazyBoard`](crate::LazyBoard) does; everything else answers
    /// `None`). The lazy counterpart of
    /// [`calendar_stats`](EventScheduler::calendar_stats).
    fn lazy_stats(&self) -> Option<&LazyStats> {
        None
    }
}

/// Heap/bucket entry: events ordered by time, ties broken by insertion
/// sequence so the simulation is fully deterministic. Ordering looks
/// only at `(time, seq)`, so the payload type needs no bounds.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Scheduled<E> {
    pub(crate) time: Time,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The binary-heap [`EventScheduler`]: `O(log n)` schedule/pop, the
/// reference implementation of the determinism contract.
///
/// [`QueueSystem`](crate::QueueSystem) and `bnb-cluster`'s `ClusterSim`
/// default to the [`CalendarQueue`](crate::CalendarQueue) for speed; the
/// heap remains the oracle the differential tests compare against, and
/// richer simulators can still plug in their own payload type here and
/// inherit the same earliest-first, FIFO-on-ties guarantee.
#[derive(Debug, Default)]
pub struct EventQueue<E = Event> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is not finite (the [`EventScheduler`] contract:
    /// bucketing schedulers cannot place infinities, so the reference
    /// implementation rejects them identically).
    pub fn schedule(&mut self, time: Time, event: E) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The earliest pending event time, if any.
    #[must_use]
    pub fn peek(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> EventScheduler<E> for EventQueue<E> {
    fn new() -> Self {
        EventQueue::new()
    }

    fn schedule(&mut self, time: Time, event: E) {
        EventQueue::schedule(self, time, event);
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        EventQueue::pop(self)
    }

    fn peek(&self) -> Option<Time> {
        EventQueue::peek(self)
    }

    fn len(&self) -> usize {
        EventQueue::len(self)
    }

    fn is_empty(&self) -> bool {
        EventQueue::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, Event::Arrival);
        q.schedule(1.0, Event::Departure { server: 7 });
        q.schedule(2.0, Event::Arrival);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, Event::Departure { server: 0 });
        q.schedule(1.0, Event::Departure { server: 1 });
        q.schedule(1.0, Event::Departure { server: 2 });
        let servers: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Departure { server } => server,
                Event::Arrival => usize::MAX,
            })
            .collect();
        assert_eq!(servers, vec![0, 1, 2]);
    }

    #[test]
    fn len_empty_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek(), None);
        q.schedule(1.0, Event::Arrival);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek(), Some(1.0));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn custom_payload_types_work() {
        // The queue is payload-agnostic: any type rides along unchanged.
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(2.0, "later");
        q.schedule(1.0, "sooner");
        assert_eq!(q.pop(), Some((1.0, "sooner")));
        assert_eq!(q.pop(), Some((2.0, "later")));
    }

    #[test]
    fn trait_dispatch_matches_inherent_api() {
        fn drive<S: EventScheduler<u32>>() -> Vec<(Time, u32)> {
            let mut s = S::new();
            s.schedule(2.0, 1);
            s.schedule(1.0, 2);
            assert_eq!(s.peek(), Some(1.0));
            assert_eq!(s.len(), 2);
            std::iter::from_fn(|| s.pop()).collect()
        }
        assert_eq!(drive::<EventQueue<u32>>(), vec![(1.0, 2), (2.0, 1)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, Event::Arrival);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_time_rejected_like_the_calendar() {
        let mut q = EventQueue::new();
        q.schedule(f64::INFINITY, Event::Arrival);
    }
}
