//! Event heap and simulation clock.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in abstract units (service requirements are Exp(1),
/// server speeds are jobs-per-unit-time).
pub type Time = f64;

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A new job enters the system.
    Arrival,
    /// The job at the head of `server`'s queue completes.
    Departure {
        /// Index of the completing server.
        server: usize,
    },
}

/// Heap entry: events ordered by time, ties broken by insertion sequence
/// so the simulation is fully deterministic. Ordering looks only at
/// `(time, seq)`, so the payload type needs no bounds.
#[derive(Debug, Clone, Copy)]
struct Scheduled<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list, generic over the event payload.
///
/// [`QueueSystem`](crate::QueueSystem) instantiates it with the default
/// [`Event`]; richer simulators (e.g. `bnb-cluster`, which adds churn
/// events) plug in their own payload type and inherit the same
/// earliest-first, FIFO-on-ties determinism guarantee.
#[derive(Debug, Default)]
pub struct EventQueue<E = Event> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: Time, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, Event::Arrival);
        q.schedule(1.0, Event::Departure { server: 7 });
        q.schedule(2.0, Event::Arrival);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, Event::Departure { server: 0 });
        q.schedule(1.0, Event::Departure { server: 1 });
        q.schedule(1.0, Event::Departure { server: 2 });
        let servers: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Departure { server } => server,
                Event::Arrival => usize::MAX,
            })
            .collect();
        assert_eq!(servers, vec![0, 1, 2]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, Event::Arrival);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn custom_payload_types_work() {
        // The queue is payload-agnostic: any type rides along unchanged.
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(2.0, "later");
        q.schedule(1.0, "sooner");
        assert_eq!(q.pop(), Some((1.0, "sooner")));
        assert_eq!(q.pop(), Some((2.0, "later")));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, Event::Arrival);
    }
}
