//! A calendar-queue [`EventScheduler`]: a bucketed timing wheel with
//! dynamic bucket-width resizing and an overflow ladder.
//!
//! The classic binary-heap future-event list pays `O(log n)` per
//! operation with comparison-driven branch misses on every sift; for the
//! cluster simulator that heap is the hot path. A calendar queue (Brown,
//! CACM 1988) exploits what a simulator's event population actually
//! looks like — times concentrated in a sliding window just ahead of the
//! clock — to get amortised `O(1)` schedule and pop:
//!
//! * the **wheel** is `nb` buckets of width `w` covering
//!   `[wheel_start, wheel_start + nb·w)`; an event lands in bucket
//!   `⌊(t − wheel_start) / w⌋` and buckets are scanned in order (an
//!   occupancy bitmask skips empty ones word-wise), so the first
//!   non-empty bucket holds the global minimum;
//! * events beyond the window go to the **overflow ladder**, an
//!   unordered pool that is re-distributed (and re-bucketed under a
//!   freshly estimated width) each time the wheel drains and the window
//!   advances;
//! * the geometry **resizes dynamically**: when the population outgrows
//!   the bucket count (or shrinks far below it) the queue rebuilds with
//!   `nb ≈ len` and a width estimated from the gaps at the *head* of
//!   the schedule (Brown's sampling idea: the event density just ahead
//!   of the clock is what bounds the per-pop scan, not the full span,
//!   which exponential service tails stretch by orders of magnitude).
//!
//! Determinism: identical to [`EventQueue`](crate::EventQueue) — pops
//! are ordered by `(time, insertion sequence)`. Bucket indexing is a
//! monotone function of time, so bucket order refines time order, equal
//! times share a bucket, and the in-bucket scan breaks ties by sequence
//! number. The scheduler-equivalence property tests drive both
//! implementations through random schedules (tie storms and far-future
//! ladder events included) and require identical output streams.

use crate::events::{EventScheduler, Scheduled, Time};

/// Smallest bucket count the wheel ever uses.
const MIN_BUCKETS: usize = 16;
/// Largest bucket count (bounds rebuild cost and memory on huge runs).
const MAX_BUCKETS: usize = 1 << 20;
/// Population beyond `GROW_FACTOR × nb` triggers a grow rebuild.
const GROW_FACTOR: usize = 2;
/// How many of the earliest pending events inform the width estimate.
const HEAD_SAMPLE: usize = 32;

/// A calendar queue: bucketed timing wheel + overflow ladder.
///
/// Implements [`EventScheduler`] with the same `(time, insertion
/// sequence)` pop order as the binary-heap
/// [`EventQueue`](crate::EventQueue), at amortised `O(1)` per operation
/// for simulation-shaped workloads. This is the default scheduler of
/// [`QueueSystem`](crate::QueueSystem) and `bnb-cluster`'s `ClusterSim`.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// The wheel: bucket `i` covers `[wheel_start + i·width, …+width)`.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// One bit per bucket: set iff the bucket is non-empty. Lets the
    /// pop scan skip empty buckets 64 at a time.
    occupancy: Vec<u64>,
    /// Far-future events (bucket index ≥ `buckets.len()`), unordered.
    overflow: Vec<Scheduled<E>>,
    /// Bucket width in simulation-time units (always positive).
    width: f64,
    /// `1 / width`, so indexing multiplies instead of divides.
    inv_width: f64,
    /// Left edge of bucket 0.
    wheel_start: Time,
    /// First bucket that may still hold the minimum (moves back when an
    /// insert lands earlier, resets when the window advances).
    cursor: usize,
    /// Events currently in the wheel (excludes the overflow ladder).
    wheel_len: usize,
    /// Total pending events.
    len: usize,
    /// Next insertion sequence number (global tie-break).
    seq: u64,
    /// Whether the geometry has been anchored to a first event yet.
    anchored: bool,
    /// Rebuild scratch (entry shuffle buffer), reused so window
    /// advances don't allocate.
    scratch: Vec<Scheduled<E>>,
    /// Rebuild scratch (head-gap width estimation), reused likewise.
    scratch_times: Vec<f64>,
    /// Rebuilds since the width was last re-estimated (the estimate is
    /// refreshed periodically, not on every window advance — the
    /// quickselect behind it would otherwise show up in profiles).
    rebuilds_since_estimate: u32,
    /// Cached location of the wheel's minimum `(time, seq)` entry, so
    /// repeated head inspections (the arrival-merge's bounded pops)
    /// don't re-scan the head bucket. Lazily recomputed after a
    /// removal; updated in O(1) on insert.
    head_valid: bool,
    head_time: Time,
    head_seq: u64,
    head_bucket: usize,
    head_slot: usize,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            occupancy: vec![0; MIN_BUCKETS.div_ceil(64)],
            overflow: Vec::new(),
            width: 1.0,
            inv_width: 1.0,
            wheel_start: 0.0,
            cursor: 0,
            wheel_len: 0,
            len: 0,
            seq: 0,
            anchored: false,
            scratch: Vec::new(),
            scratch_times: Vec::new(),
            rebuilds_since_estimate: 0,
            head_valid: false,
            head_time: 0.0,
            head_seq: 0,
            head_bucket: 0,
            head_slot: 0,
        }
    }
}

impl<E> CalendarQueue<E> {
    /// Creates an empty calendar queue.
    #[must_use]
    pub fn new() -> Self {
        CalendarQueue::default()
    }

    /// Bucket index of `time` under the current geometry. Monotone in
    /// `time` (floor of an increasing affine map), so bucket order
    /// refines time order; saturates far past the wheel for huge times.
    #[inline]
    fn bucket_index(&self, time: Time) -> usize {
        // `as usize` saturates negatives to 0 and huge values past the
        // wheel (and maps NaN to 0, which `schedule` rejects).
        ((time - self.wheel_start) * self.inv_width) as usize
    }

    /// Slots an entry into the wheel or the overflow ladder. The entry's
    /// time must be `≥ wheel_start`.
    #[inline]
    fn slot(&mut self, entry: Scheduled<E>) {
        let idx = self.bucket_index(entry.time);
        if idx < self.buckets.len() {
            // Bucket order refines time order, so an insert into an
            // earlier bucket — or a smaller `(time, seq)` into the head
            // bucket — is the new wheel minimum; anything else leaves
            // the cached head untouched.
            if self.head_valid
                && (idx < self.head_bucket
                    || (idx == self.head_bucket
                        && (entry.time < self.head_time
                            || (entry.time == self.head_time && entry.seq < self.head_seq))))
            {
                self.head_time = entry.time;
                self.head_seq = entry.seq;
                self.head_bucket = idx;
                self.head_slot = self.buckets[idx].len();
            }
            self.buckets[idx].push(entry);
            self.occupancy[idx >> 6] |= 1u64 << (idx & 63);
            self.wheel_len += 1;
            if idx < self.cursor {
                self.cursor = idx;
            }
        } else {
            self.overflow.push(entry);
        }
    }

    /// Ensures the head cache points at the wheel's minimum entry,
    /// advancing the window over the overflow ladder if the wheel is
    /// empty. Requires `len > 0`.
    #[inline]
    fn ensure_head(&mut self) {
        while !self.head_valid {
            if let Some(b) = self.next_nonempty(self.cursor) {
                self.cursor = b;
                let bucket = &self.buckets[b];
                let best = Self::min_in_bucket(bucket);
                self.head_time = bucket[best].time;
                self.head_seq = bucket[best].seq;
                self.head_bucket = b;
                self.head_slot = best;
                self.head_valid = true;
            } else {
                // Wheel drained; advance the window over the overflow
                // ladder (re-estimating the width as the population
                // evolves).
                debug_assert!(self.wheel_len == 0 && !self.overflow.is_empty());
                self.rebuild();
            }
        }
    }

    /// Removes the cached head entry (bookkeeping included).
    #[inline]
    fn take_head(&mut self) -> Scheduled<E> {
        debug_assert!(self.head_valid);
        let b = self.head_bucket;
        let bucket = &mut self.buckets[b];
        let entry = bucket.swap_remove(self.head_slot);
        if bucket.is_empty() {
            self.occupancy[b >> 6] &= !(1u64 << (b & 63));
        }
        self.wheel_len -= 1;
        self.len -= 1;
        self.head_valid = false;
        entry
    }

    /// First non-empty bucket at or after `from`, via the occupancy
    /// words.
    #[inline]
    fn next_nonempty(&self, from: usize) -> Option<usize> {
        let words = self.occupancy.len();
        let mut w = from >> 6;
        if w >= words {
            return None;
        }
        let mut word = self.occupancy[w] & (!0u64 << (from & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= words {
                return None;
            }
            word = self.occupancy[w];
        }
    }

    /// Rebuilds the geometry around the current population: bucket count
    /// ≈ population (clamped), width estimated from the head-of-schedule
    /// gaps, window anchored at the earliest pending event. Also used to
    /// advance the window when the wheel drains.
    fn rebuild(&mut self) {
        let mut entries = std::mem::take(&mut self.scratch);
        entries.clear();
        entries.reserve(self.len);
        for bucket in &mut self.buckets {
            entries.append(bucket);
        }
        entries.append(&mut self.overflow);
        self.wheel_len = 0;
        self.cursor = 0;
        self.head_valid = false;
        debug_assert_eq!(entries.len(), self.len);
        if entries.is_empty() {
            self.anchored = false;
            self.scratch = entries;
            return;
        }
        let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for e in &entries {
            tmin = tmin.min(e.time);
            tmax = tmax.max(e.time);
        }
        // Hysteresis on the bucket count: resize only when the
        // population has clearly outgrown (grow) or fallen at least 4×
        // below (shrink) the wheel, so a population oscillating around
        // a power of two doesn't reallocate every bucket on every
        // window advance — bucket capacity is retained across rebuilds
        // otherwise. Shrinks only ever happen here (window advances and
        // grows), never mid-pop.
        let target_nb = entries
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let nb = if target_nb > self.buckets.len() || target_nb * 4 <= self.buckets.len() {
            target_nb
        } else {
            self.buckets.len()
        };
        // Brown-style width estimation from the *head* of the schedule:
        // aim for ~2 events per bucket across the gap spanned by the
        // `k` earliest pending times. Re-estimated when the geometry
        // changes and periodically across plain window advances (the
        // quickselect behind the estimate is not free); in between, the
        // previous width carries over — the population density drifts
        // far slower than the window turns. Falls back to the full span
        // (and then to 1.0) when the head is all ties.
        self.rebuilds_since_estimate += 1;
        if nb != self.buckets.len() || self.rebuilds_since_estimate >= 16 || self.width <= 0.0 {
            self.rebuilds_since_estimate = 0;
            let head_k = entries.len().min(HEAD_SAMPLE);
            let head_span = if head_k >= 2 {
                let times = &mut self.scratch_times;
                times.clear();
                times.extend(entries.iter().map(|e| e.time));
                let (head, &mut head_kth, _) =
                    times.select_nth_unstable_by(head_k - 1, f64::total_cmp);
                let head_min = head.iter().copied().fold(head_kth, f64::min);
                head_kth - head_min
            } else {
                0.0
            };
            let span = tmax - tmin;
            self.width = if head_span > 0.0 {
                ((head_span / head_k as f64) * 2.0).max(1e-300)
            } else if span > 0.0 {
                ((span / entries.len() as f64) * 2.0).max(1e-300)
            } else {
                1.0
            };
            self.inv_width = 1.0 / self.width;
        }
        self.wheel_start = tmin;
        if self.buckets.len() != nb {
            self.buckets.resize_with(nb, Vec::new);
        }
        self.occupancy.clear();
        self.occupancy.resize(nb.div_ceil(64), 0);
        for entry in entries.drain(..) {
            self.slot(entry);
        }
        self.scratch = entries;
    }

    /// Index of the minimum `(time, seq)` entry within a bucket.
    #[inline]
    fn min_in_bucket(bucket: &[Scheduled<E>]) -> usize {
        let mut best = 0;
        for (i, e) in bucket.iter().enumerate().skip(1) {
            let b = &bucket[best];
            if e.time < b.time || (e.time == b.time && e.seq < b.seq) {
                best = i;
            }
        }
        best
    }
}

impl<E> EventScheduler<E> for CalendarQueue<E> {
    fn new() -> Self {
        CalendarQueue::new()
    }

    fn schedule(&mut self, time: Time, event: E) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let entry = Scheduled {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.len += 1;
        if !self.anchored {
            self.anchored = true;
            self.wheel_start = time;
            self.cursor = 0;
        }
        if time < self.wheel_start {
            // An insert before the window (arbitrary schedules only —
            // simulators schedule at `now + dt`): re-anchor around it.
            self.overflow.push(entry);
            self.rebuild();
        } else {
            self.slot(entry);
            if self.len > GROW_FACTOR * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
                self.rebuild();
            }
        }
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        self.ensure_head();
        let entry = self.take_head();
        Some((entry.time, entry.event))
    }

    fn pop_if_before(&mut self, bound: Time) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        self.ensure_head();
        if self.head_time >= bound {
            return None;
        }
        let entry = self.take_head();
        Some((entry.time, entry.event))
    }

    fn peek(&self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        if self.head_valid {
            return Some(self.head_time);
        }
        if let Some(b) = self.next_nonempty(self.cursor) {
            let bucket = &self.buckets[b];
            return Some(bucket[Self::min_in_bucket(bucket)].time);
        }
        self.overflow.iter().map(|e| e.time).min_by(f64::total_cmp)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventQueue;

    fn drain<S: EventScheduler<u64>>(s: &mut S) -> Vec<(Time, u64)> {
        std::iter::from_fn(|| s.pop()).collect()
    }

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        q.schedule(3.0, 0);
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(2.0, 3);
        q.schedule(1.0, 4);
        assert_eq!(q.peek(), Some(1.0));
        assert_eq!(
            drain(&mut q),
            vec![(1.0, 1), (1.0, 2), (1.0, 4), (2.0, 3), (3.0, 0)]
        );
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_events_ride_the_overflow_ladder() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        q.schedule(1e12, 0);
        q.schedule(0.5, 1);
        q.schedule(1e9, 2);
        q.schedule(2.0, 3);
        assert_eq!(drain(&mut q), vec![(0.5, 1), (2.0, 3), (1e9, 2), (1e12, 0)]);
    }

    #[test]
    fn insert_before_the_window_reanchors() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        q.schedule(100.0, 0);
        q.schedule(200.0, 1);
        // Earlier than the anchor: must still pop first.
        q.schedule(-5.0, 2);
        assert_eq!(q.peek(), Some(-5.0));
        assert_eq!(drain(&mut q), vec![(-5.0, 2), (100.0, 0), (200.0, 1)]);
    }

    #[test]
    fn pop_if_before_respects_the_bound_and_ties() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        q.schedule(1.0, 0);
        q.schedule(2.0, 1);
        q.schedule(1e10, 2); // overflow ladder
        assert_eq!(q.pop_if_before(0.5), None, "nothing before 0.5");
        assert_eq!(q.pop_if_before(1.0), None, "ties are not popped");
        assert_eq!(q.pop_if_before(1.5), Some((1.0, 0)));
        assert_eq!(q.pop_if_before(3.0), Some((2.0, 1)));
        assert_eq!(q.pop_if_before(1e9), None, "ladder event is later");
        assert_eq!(q.pop_if_before(2e10), Some((1e10, 2)));
        assert_eq!(q.pop_if_before(f64::MAX), None, "empty");
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn grows_and_shrinks_without_losing_events() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let n = 10_000u64;
        for i in 0..n {
            // Deterministic scatter over a wide range, with ties.
            let t = ((i * 2_654_435_761) % 1_000) as f64 * 0.25;
            q.schedule(t, i);
        }
        assert!(q.buckets.len() > MIN_BUCKETS, "wheel must have grown");
        assert_eq!(q.len(), n as usize);
        let popped = drain(&mut q);
        assert_eq!(popped.len(), n as usize);
        for w in popped.windows(2) {
            assert!(
                w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1),
                "order violated: {w:?}"
            );
        }
        // Shrinks happen at rebuild points (window advances / grows),
        // so drive a second small phase with spread-out times: its
        // window advances must shrink the wheel back down.
        let peak = q.buckets.len();
        for i in 0..64u64 {
            q.schedule(1e6 + (i * 97) as f64, i);
        }
        let tail = drain(&mut q);
        assert_eq!(tail.len(), 64);
        assert!(
            q.buckets.len() < peak && q.buckets.len() <= 8 * MIN_BUCKETS,
            "wheel must shrink at window advances: peak {peak}, now {}",
            q.buckets.len()
        );
    }

    #[test]
    fn matches_binary_heap_on_an_interleaved_workload() {
        // A simulation-shaped drive: alternating schedule/pop with the
        // clock advancing, plus periodic tie bursts and far futures.
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut heap: EventQueue<u64> = EventQueue::new();
        let mut id = 0u64;
        let mut sched = |cal: &mut CalendarQueue<u64>, heap: &mut EventQueue<u64>, t: f64| {
            cal.schedule(t, id);
            EventScheduler::schedule(heap, t, id);
            id += 1;
        };
        let mut now = 0.0f64;
        for step in 0..5_000u64 {
            let dt = ((step * 48_271) % 997) as f64 / 100.0;
            sched(&mut cal, &mut heap, now + dt);
            if step % 7 == 0 {
                sched(&mut cal, &mut heap, now + dt); // exact tie
            }
            if step % 101 == 0 {
                sched(&mut cal, &mut heap, now + 1e9); // ladder event
            }
            if step % 3 != 0 {
                let a = cal.pop();
                let b = EventScheduler::pop(&mut heap);
                assert_eq!(a, b, "divergence at step {step}");
                if let Some((t, _)) = a {
                    now = now.max(t);
                }
            }
            assert_eq!(cal.len(), EventScheduler::len(&heap));
        }
        assert_eq!(
            drain(&mut cal),
            std::iter::from_fn(|| heap.pop()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_ties_degenerate_population() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        for i in 0..1_000 {
            q.schedule(42.0, i);
        }
        let popped = drain(&mut q);
        assert_eq!(popped.len(), 1_000);
        assert!(popped.windows(2).all(|w| w[0].1 < w[1].1), "FIFO on ties");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_time_rejected() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        q.schedule(f64::INFINITY, 0);
    }
}
