//! A calendar-queue [`EventScheduler`]: a bucketed timing wheel over a
//! slab-allocated entry arena, with dynamic bucket-width resizing and an
//! overflow ladder.
//!
//! The classic binary-heap future-event list pays `O(log n)` per
//! operation with comparison-driven branch misses on every sift; for the
//! cluster simulator that heap is the hot path. A calendar queue (Brown,
//! CACM 1988) exploits what a simulator's event population actually
//! looks like — times concentrated in a sliding window just ahead of the
//! clock — to get amortised `O(1)` schedule and pop:
//!
//! * every pending entry lives in **one contiguous slab arena**; a
//!   bucket is just the head index of an intrusive singly-linked list
//!   threaded through the arena, and freed slots go on an intrusive
//!   free list for reuse. Scheduling never allocates in steady state
//!   (no per-bucket `Vec` growth), window advances **relink** entries
//!   by rewriting one index each instead of moving them, and the hot
//!   entries stay packed in the same few cache lines however often the
//!   wheel turns;
//! * the **wheel** is `nb` buckets of width `w` covering
//!   `[wheel_start, wheel_start + nb·w)`; an event lands in bucket
//!   `⌊(t − wheel_start) / w⌋` and buckets are scanned in order (an
//!   occupancy bitmask skips empty ones word-wise), so the first
//!   non-empty bucket holds the global minimum;
//! * events beyond the window go to the **overflow ladder**, an
//!   unordered intrusive list that is re-distributed (and re-bucketed
//!   under a freshly estimated width) each time the wheel drains and
//!   the window advances;
//! * the geometry **resizes dynamically**: when the population outgrows
//!   the bucket count (or shrinks far below it) the queue rebuilds with
//!   `nb ≈ 8·len` (deliberately sparse: singleton chains keep the
//!   per-pop scan branch-predictable) and a width estimated from the
//!   gaps at the *head* of
//!   the schedule (Brown's sampling idea: the event density just ahead
//!   of the clock is what bounds the per-pop scan, not the full span,
//!   which exponential service tails stretch by orders of magnitude);
//! * a **bounded-horizon bring-forward ring** sits in front of the
//!   wheel: the next `RING_REFILL` upcoming entries are brought
//!   forward from the wheel **in one bulk pass** (whole bucket chains
//!   unlinked in occupancy order; singleton chains extend the ring
//!   directly, multi-entry chains pay one small sort) into a sorted
//!   ring of `(time, arena slot)` pairs, ascending, minimum at the
//!   front. Every pop is then an unconditional `O(1)` front take — the
//!   per-pop bucket scan, chain unlink and occupancy bookkeeping are
//!   paid once per refill, not once per event. Schedules compare
//!   against the ring's horizon (its back entry): inside it they
//!   insert into the ring by binary search (a handful of L1 writes, no
//!   bucket chains), spilling the ring's farthest entry when it
//!   overflows `RING_MAX`;
//! * schedules at or past the horizon — the common case, simulators
//!   schedule at `now + dt` — and ring spills park on a **bulk-commit
//!   buffer** instead of touching bucket chains: the anchor check,
//!   bucket-index math, chain link, occupancy-bitmask update and grow
//!   check are deferred and paid in one tight batch loop per ring
//!   refill, so the per-schedule fast path is an arena write plus a
//!   `Vec` push.
//!
//! Determinism: identical to [`EventQueue`](crate::EventQueue) — pops
//! are ordered by `(time, insertion sequence)`. Bucket indexing is a
//! monotone function of time, so bucket order refines time order, equal
//! times share a bucket, and the refill sort breaks ties by sequence
//! number (list order within a bucket is irrelevant: a refill takes
//! whole chains and sorts them by `(time, seq)`). The ring preserves
//! the invariant that every wheel-side entry is `(time, seq)`-greater
//! than the ring's back: refills only run on an empty ring, a schedule
//! strictly inside the horizon lands in the ring (an exact tie at the
//! horizon carries a larger seq and goes to the wheel), and equal times
//! always share a bucket, so the ring's front is always the global
//! minimum and the buffering is invisible in the output stream. The
//! scheduler-equivalence property tests drive both implementations
//! through random schedules (tie storms, window-edge events and
//! far-future ladder events included) and require identical output
//! streams.

use crate::events::{EventScheduler, Time};
use crate::stats::CalendarStats;
use std::collections::VecDeque;

/// Smallest bucket count the wheel ever uses.
const MIN_BUCKETS: usize = 16;
/// Largest bucket count (bounds rebuild cost and memory on huge runs).
const MAX_BUCKETS: usize = 1 << 20;
/// Buckets allocated per pending event. The wheel runs deliberately
/// *sparse* — mostly-empty buckets mean mostly-singleton chains, so the
/// per-pop min scan is one predictable load instead of a data-dependent
/// walk, and the occupancy words absorb the skipping cost 64 buckets at
/// a time. Measured on the cluster hold pattern, 8×(population) buckets
/// at quarter-gap width beat the classic ~1×/2-per-bucket geometry by
/// ~25% per schedule+pop pair; a bucket head is 4 bytes, so even the
/// sparse wheel stays a few KB for simulator-sized populations.
const BUCKETS_PER_EVENT: usize = 8;
/// Population beyond `GROW_FACTOR × nb` triggers a grow rebuild
/// (`nb` counted in [`BUCKETS_PER_EVENT`] units).
const GROW_FACTOR: usize = 2;
/// How many of the earliest pending events inform the width estimate.
const HEAD_SAMPLE: usize = 32;
/// Target bucket width as a fraction of the mean head-of-schedule gap:
/// ~4 buckets per pending head event (the sparse-geometry counterpart
/// of [`BUCKETS_PER_EVENT`], keeping the covered window
/// `nb·w ≈ 2 × (population × head gap)` — the same span the classic
/// dense geometry covered, so the overflow ladder turns no faster).
const WIDTH_PER_GAP: f64 = 0.25;
/// How many upcoming entries one bulk refill brings forward from the
/// wheel into the ring. Large enough to amortise the occupancy scan and
/// chain unlinks over many pops, small enough that the refill sort and
/// the binary-searched inside-horizon inserts stay a few L1 lines (the
/// full ring is ≤ [`RING_MAX`] × 16 bytes).
const RING_REFILL: usize = 8;
/// Ring occupancy beyond which an inside-horizon insert spills the
/// ring's farthest entry back to the wheel instead of growing the ring
/// (bounds the memmove an insert can pay; refills only run on an empty
/// ring, so chain-take overshoot past this cap is transient).
const RING_MAX: usize = 16;
/// Null link of the intrusive lists (bucket chains and the free list).
const NIL: u32 = u32::MAX;

/// One arena slot: a scheduled entry plus its intrusive list link. The
/// link threads bucket chains, the overflow ladder and the free list —
/// a slot is always on exactly one of them.
#[derive(Debug, Clone, Copy)]
struct Slot<E> {
    time: Time,
    seq: u64,
    next: u32,
    event: E,
}

/// A calendar queue: bucketed timing wheel + overflow ladder over a
/// slab arena.
///
/// Implements [`EventScheduler`] with the same `(time, insertion
/// sequence)` pop order as the binary-heap
/// [`EventQueue`](crate::EventQueue), at amortised `O(1)` per operation
/// for simulation-shaped workloads. This is the default scheduler of
/// [`QueueSystem`](crate::QueueSystem) and `bnb-cluster`'s `ClusterSim`.
///
/// Payloads must be `Copy`: entries live in the recycled slab arena, and
/// popping copies the event out of its slot as the slot moves to the
/// free list (the heap-backed [`EventQueue`](crate::EventQueue) carries
/// arbitrary payloads if you need them).
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// The slab: every pending entry, plus recycled free slots.
    arena: Vec<Slot<E>>,
    /// Head of the intrusive free list through `arena`.
    free_head: u32,
    /// Bucket `i` covers `[wheel_start + i·width, …+width)`; the value
    /// is the head index of its intrusive chain (`NIL` = empty).
    heads: Vec<u32>,
    /// One bit per bucket: set iff the bucket is non-empty. Lets the
    /// pop scan skip empty buckets 64 at a time.
    occupancy: Vec<u64>,
    /// Far-future events (bucket index ≥ `heads.len()`), an unordered
    /// intrusive chain.
    overflow_head: u32,
    /// Bucket width in simulation-time units (always positive).
    width: f64,
    /// `1 / width`, so indexing multiplies instead of divides.
    inv_width: f64,
    /// Left edge of bucket 0.
    wheel_start: Time,
    /// First bucket that may still hold the minimum (moves back when an
    /// insert lands earlier, resets when the window advances).
    cursor: usize,
    /// Events currently in the wheel (excludes the overflow ladder).
    wheel_len: usize,
    /// Total pending events.
    len: usize,
    /// Next insertion sequence number (global tie-break).
    seq: u64,
    /// Whether the geometry has been anchored to a first event yet.
    anchored: bool,
    /// Rebuild scratch (slot-index shuffle buffer), reused so window
    /// advances don't allocate.
    scratch: Vec<u32>,
    /// Rebuild scratch (head-gap width estimation), reused likewise.
    scratch_times: Vec<f64>,
    /// Rebuilds since the width was last re-estimated (the estimate is
    /// refreshed periodically, not on every window advance — the
    /// quickselect behind it would otherwise show up in profiles).
    rebuilds_since_estimate: u32,
    /// Bring-forward ring: `(time, arena slot)` of the next upcoming
    /// entries, sorted by `(time, seq)` **ascending** — the minimum is
    /// the front, so every pop is an `O(1)` front take. Refilled in
    /// bulk from the wheel when empty; every wheel-side entry is
    /// `(time, seq)`-greater than the ring's back.
    ring: VecDeque<(Time, u32)>,
    /// Refill scratch (`(time, seq, slot)` sort buffer), reused so
    /// refills don't allocate.
    ring_scratch: Vec<(Time, u64, u32)>,
    /// Bulk-commit buffer: allocated slots scheduled at or past the
    /// ring's horizon, awaiting their wheel insert. The per-schedule
    /// wheel work — anchor check, bucket-index math, chain link,
    /// occupancy-bitmask update, grow check — is deferred and paid in
    /// one tight batch loop per ring refill, off the per-event path.
    /// Entries here count toward `len` but not `wheel_len`.
    pending: Vec<(Time, u32)>,
    /// Always-on internals telemetry. Touched only on the amortised
    /// paths (refills, spills, drains, rebuilds) — never per event.
    stats: CalendarStats,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue {
            arena: Vec::new(),
            free_head: NIL,
            heads: vec![NIL; MIN_BUCKETS],
            occupancy: vec![0; MIN_BUCKETS.div_ceil(64)],
            overflow_head: NIL,
            width: 1.0,
            inv_width: 1.0,
            wheel_start: 0.0,
            cursor: 0,
            wheel_len: 0,
            len: 0,
            seq: 0,
            anchored: false,
            scratch: Vec::new(),
            scratch_times: Vec::new(),
            rebuilds_since_estimate: 0,
            ring: VecDeque::new(),
            ring_scratch: Vec::new(),
            pending: Vec::new(),
            stats: CalendarStats::new(),
        }
    }
}

impl<E: Copy> CalendarQueue<E> {
    /// Creates an empty calendar queue.
    #[must_use]
    pub fn new() -> Self {
        CalendarQueue::default()
    }

    /// The always-on scheduler-internals telemetry: ring refills and
    /// spills, bulk-commit drains, rebuild count, and the occupancy
    /// distributions sampled at rebuilds.
    #[must_use]
    pub fn stats(&self) -> &CalendarStats {
        &self.stats
    }

    /// Bucket index of `time` under the current geometry. Monotone in
    /// `time` (floor of an increasing affine map), so bucket order
    /// refines time order; saturates far past the wheel for huge times.
    #[inline]
    fn bucket_index(&self, time: Time) -> usize {
        // `as usize` saturates negatives to 0 and huge values past the
        // wheel (and maps NaN to 0, which `schedule` rejects).
        ((time - self.wheel_start) * self.inv_width) as usize
    }

    /// Takes a slot off the free list (or grows the arena) and writes
    /// the entry into it.
    #[inline]
    fn alloc(&mut self, time: Time, seq: u64, event: E) -> u32 {
        let idx = self.free_head;
        if idx != NIL {
            let slot = &mut self.arena[idx as usize];
            self.free_head = slot.next;
            slot.time = time;
            slot.seq = seq;
            slot.event = event;
            idx
        } else {
            assert!(
                self.arena.len() < NIL as usize,
                "calendar arena exceeds u32 indexing"
            );
            self.arena.push(Slot {
                time,
                seq,
                next: NIL,
                event,
            });
            (self.arena.len() - 1) as u32
        }
    }

    /// Returns a popped slot to the free list. The event value is left
    /// in place (payloads are `Copy`) until the slot is reused.
    #[inline]
    fn release(&mut self, idx: u32) {
        self.arena[idx as usize].next = self.free_head;
        self.free_head = idx;
    }

    /// Inserts an allocated slot into the bring-forward ring at its
    /// sorted position — the inside-horizon schedule path. Among equal
    /// times the new entry carries the largest sequence number ever
    /// issued, so a binary search for the first strictly-later time
    /// lands it *after* its older equal-time peers — exactly
    /// `(time, seq)` ascending. Overflow past [`RING_MAX`] spills the
    /// ring's farthest entry back to the wheel.
    #[inline]
    fn ring_insert(&mut self, time: Time, idx: u32) {
        let pos = self.ring.partition_point(|&(t, _)| t <= time);
        self.ring.insert(pos, (time, idx));
        if self.ring.len() > RING_MAX {
            // The spilled entry was the ring's `(time, seq)` maximum, so
            // parking it on the bulk-commit buffer keeps the wheel-side
            // invariant relative to the new back.
            let spill = self.ring.pop_back().expect("ring is non-empty");
            self.pending.push((spill.0, spill.1));
            self.stats.ring_spills += 1;
        }
    }

    /// Pops the ring's minimum `(time, seq)` entry — the front of the
    /// ascending buffer — releasing its arena slot.
    #[inline]
    fn take_ring(&mut self) -> (Time, E) {
        let (time, idx) = self.ring.pop_front().expect("ring is non-empty");
        let event = self.arena[idx as usize].event;
        self.release(idx);
        self.len -= 1;
        (time, event)
    }

    /// Commits an allocated slot to the wheel proper: anchors the
    /// geometry on first contact, re-anchors via the overflow ladder on
    /// a before-window insert, and triggers a grow rebuild when the
    /// wheel population outruns the bucket count.
    #[inline]
    fn commit_to_wheel(&mut self, idx: u32, time: Time) {
        if !self.anchored {
            self.anchored = true;
            self.wheel_start = time;
            self.cursor = 0;
        }
        if time < self.wheel_start {
            // An insert before the window (arbitrary schedules only —
            // simulators schedule at `now + dt`): re-anchor around it.
            self.arena[idx as usize].next = self.overflow_head;
            self.overflow_head = idx;
            self.rebuild();
        } else {
            self.slot(idx);
            let wheel_population = self.len - self.ring.len() - self.pending.len();
            if wheel_population > GROW_FACTOR * self.heads.len() && self.heads.len() < MAX_BUCKETS {
                self.rebuild();
            }
        }
    }

    /// Drains the bulk-commit buffer into the wheel — the batched half
    /// of the deferred per-schedule wheel work. The common case (the
    /// geometry is anchored and the entry lands at or past the window
    /// start) runs an inlined chain-link loop with the grow check
    /// hoisted out entirely: one batch-level check after the drain
    /// replaces one per schedule. Entries are taken from the back, so a
    /// re-anchor or grow rebuild triggered mid-flush simply sees the
    /// not-yet-committed remainder still on the buffer (the rebuild
    /// skips them, like ring entries) and the loop finishes against the
    /// new geometry.
    fn flush_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.stats.pending_drained += self.pending.len() as u64;
        while let Some(&(time, idx)) = self.pending.last() {
            if !self.anchored || time < self.wheel_start {
                // Rare: first contact or a before-window insert
                // (arbitrary schedules only) — take the full path,
                // which may re-anchor and rebuild.
                self.pending.pop();
                self.commit_to_wheel(idx, time);
                continue;
            }
            self.pending.pop();
            let b = self.bucket_index(time);
            if b < self.heads.len() {
                self.arena[idx as usize].next = self.heads[b];
                self.heads[b] = idx;
                self.occupancy[b >> 6] |= 1u64 << (b & 63);
                self.wheel_len += 1;
                self.cursor = self.cursor.min(b);
            } else {
                self.arena[idx as usize].next = self.overflow_head;
                self.overflow_head = idx;
            }
        }
        let wheel_population = self.len - self.ring.len();
        if wheel_population > GROW_FACTOR * self.heads.len() && self.heads.len() < MAX_BUCKETS {
            self.rebuild();
        }
    }

    /// Brings the next upcoming entries forward from the wheel into the
    /// empty ring, in one bulk pass: the bulk-commit buffer is flushed
    /// first, then whole bucket chains are unlinked in occupancy order
    /// until [`RING_REFILL`] entries are collected (multi-entry chains
    /// sort by `(time, seq)` among themselves), and the per-pop cost
    /// collapses to a front take. Taking whole chains keeps the ring
    /// invariant at bucket granularity: everything left on the wheel
    /// sits in a strictly later bucket (equal times always share a
    /// bucket), hence is strictly `(time, seq)`-greater than the ring's
    /// back. Advances the window over the overflow ladder if the wheel
    /// is drained. Requires `len > 0`.
    fn refill_ring(&mut self) {
        debug_assert!(self.ring.is_empty());
        self.stats.ring_refills += 1;
        self.flush_pending();
        let mut taken = 0usize;
        while taken == 0 {
            let mut cursor = self.cursor;
            while taken < RING_REFILL {
                let Some(b) = self.next_nonempty(cursor) else {
                    break;
                };
                // Unlink the whole chain. Bucket order refines time
                // order, so appended buckets extend the ring in order;
                // only multi-entry chains (rare under the sparse
                // geometry) pay a sort to restore `(time, seq)` order
                // among themselves.
                let head = self.heads[b];
                if self.arena[head as usize].next == NIL {
                    self.ring.push_back((self.arena[head as usize].time, head));
                    taken += 1;
                } else {
                    let batch = &mut self.ring_scratch;
                    batch.clear();
                    let mut idx = head;
                    while idx != NIL {
                        let s = &self.arena[idx as usize];
                        batch.push((s.time, s.seq, idx));
                        idx = s.next;
                    }
                    batch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                    taken += batch.len();
                    let batch = std::mem::take(&mut self.ring_scratch);
                    self.ring.extend(batch.iter().map(|&(t, _, idx)| (t, idx)));
                    self.ring_scratch = batch;
                }
                self.heads[b] = NIL;
                self.occupancy[b >> 6] &= !(1u64 << (b & 63));
                cursor = b + 1;
            }
            self.cursor = cursor.min(self.heads.len());
            if taken == 0 {
                // Wheel drained; advance the window over the overflow
                // ladder (re-estimating the width as the population
                // evolves).
                debug_assert!(self.wheel_len == 0 && self.overflow_head != NIL);
                self.rebuild();
            }
        }
        self.wheel_len -= taken;
    }

    /// Links an allocated slot into the wheel or the overflow ladder.
    /// The slot's time must be `≥ wheel_start`.
    #[inline]
    fn slot(&mut self, idx: u32) {
        let time = self.arena[idx as usize].time;
        let b = self.bucket_index(time);
        if b < self.heads.len() {
            self.arena[idx as usize].next = self.heads[b];
            self.heads[b] = idx;
            self.occupancy[b >> 6] |= 1u64 << (b & 63);
            self.wheel_len += 1;
            if b < self.cursor {
                self.cursor = b;
            }
        } else {
            self.arena[idx as usize].next = self.overflow_head;
            self.overflow_head = idx;
        }
    }

    /// First non-empty bucket at or after `from`, via the occupancy
    /// words.
    #[inline]
    fn next_nonempty(&self, from: usize) -> Option<usize> {
        let words = self.occupancy.len();
        let mut w = from >> 6;
        if w >= words {
            return None;
        }
        let mut word = self.occupancy[w] & (!0u64 << (from & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= words {
                return None;
            }
            word = self.occupancy[w];
        }
    }

    /// Minimum `(time, seq)` entry of bucket `b`'s chain, returned as
    /// `(slot, predecessor-or-NIL)`. The chain must be non-empty.
    #[inline]
    fn min_in_bucket(&self, b: usize) -> (u32, u32) {
        let mut idx = self.heads[b];
        debug_assert_ne!(idx, NIL);
        let mut best = idx;
        let mut best_prev = NIL;
        let (mut best_time, mut best_seq) = {
            let s = &self.arena[idx as usize];
            (s.time, s.seq)
        };
        let mut prev = idx;
        idx = self.arena[idx as usize].next;
        while idx != NIL {
            let s = &self.arena[idx as usize];
            if s.time < best_time || (s.time == best_time && s.seq < best_seq) {
                best = idx;
                best_prev = prev;
                best_time = s.time;
                best_seq = s.seq;
            }
            prev = idx;
            idx = s.next;
        }
        (best, best_prev)
    }

    /// Rebuilds the geometry around the current population: bucket count
    /// ≈ [`BUCKETS_PER_EVENT`] × population (clamped), width estimated
    /// from the head-of-schedule gaps, window anchored at the earliest
    /// pending event. Entries are
    /// **relinked in place** — the rebuild rewrites one `next` index per
    /// entry and never moves entry data. Also used to advance the window
    /// when the wheel drains.
    fn rebuild(&mut self) {
        self.stats.rebuilds += 1;
        let mut entries = std::mem::take(&mut self.scratch);
        entries.clear();
        entries.reserve(self.len);
        // Collect every pending slot index: occupied buckets first (the
        // occupancy words name them), then the overflow chain. Chain
        // lengths feed the occupancy histogram as they are walked —
        // rebuilds are rare enough that the telemetry rides for free.
        for (w, &word) in self.occupancy.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let chain_start = entries.len();
                let mut idx = self.heads[b];
                while idx != NIL {
                    entries.push(idx);
                    idx = self.arena[idx as usize].next;
                }
                self.heads[b] = NIL;
                self.stats
                    .bucket_occupancy
                    .record((entries.len() - chain_start) as u64);
            }
        }
        let mut idx = self.overflow_head;
        while idx != NIL {
            entries.push(idx);
            idx = self.arena[idx as usize].next;
        }
        self.overflow_head = NIL;
        self.stats.population_at_rebuild.record(self.len as u64);
        self.wheel_len = 0;
        self.cursor = 0;
        // Ring and bulk-commit-buffer entries live in the arena but on
        // neither the buckets nor the ladder — a rebuild never touches
        // them (mid-flush rebuilds recommit the remainder afterwards).
        debug_assert_eq!(
            entries.len(),
            self.len - self.ring.len() - self.pending.len()
        );
        if entries.is_empty() {
            self.anchored = false;
            self.scratch = entries;
            return;
        }
        let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &e in &entries {
            let t = self.arena[e as usize].time;
            tmin = tmin.min(t);
            tmax = tmax.max(t);
        }
        // Hysteresis on the bucket count: resize only when the
        // population has clearly outgrown (grow) or fallen at least 4×
        // below (shrink) the wheel, so a population oscillating around
        // a power of two doesn't reallocate every bucket on every
        // window advance — bucket capacity is retained across rebuilds
        // otherwise. Shrinks only ever happen here (window advances and
        // grows), never mid-pop.
        let target_nb = (entries.len() * BUCKETS_PER_EVENT)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let nb = if target_nb > self.heads.len() || target_nb * 4 <= self.heads.len() {
            target_nb
        } else {
            self.heads.len()
        };
        // Brown-style width estimation from the *head* of the schedule:
        // aim for [`WIDTH_PER_GAP`] of the mean gap spanned by the `k`
        // earliest pending times. Re-estimated when the geometry
        // changes and periodically across plain window advances (the
        // quickselect behind the estimate is not free); in between, the
        // previous width carries over — the population density drifts
        // far slower than the window turns. Falls back to the full span
        // (and then to 1.0) when the head is all ties.
        self.rebuilds_since_estimate += 1;
        if nb != self.heads.len() || self.rebuilds_since_estimate >= 16 || self.width <= 0.0 {
            self.rebuilds_since_estimate = 0;
            let head_k = entries.len().min(HEAD_SAMPLE);
            let head_span = if head_k >= 2 {
                let times = &mut self.scratch_times;
                times.clear();
                times.extend(entries.iter().map(|&e| self.arena[e as usize].time));
                let (head, &mut head_kth, _) =
                    times.select_nth_unstable_by(head_k - 1, f64::total_cmp);
                let head_min = head.iter().copied().fold(head_kth, f64::min);
                head_kth - head_min
            } else {
                0.0
            };
            let span = tmax - tmin;
            self.width = if head_span > 0.0 {
                ((head_span / head_k as f64) * WIDTH_PER_GAP).max(1e-300)
            } else if span > 0.0 {
                ((span / entries.len() as f64) * WIDTH_PER_GAP).max(1e-300)
            } else {
                1.0
            };
            self.inv_width = 1.0 / self.width;
        }
        self.wheel_start = tmin;
        if self.heads.len() != nb {
            self.heads.clear();
            self.heads.resize(nb, NIL);
        }
        self.occupancy.clear();
        self.occupancy.resize(nb.div_ceil(64), 0);
        for &e in &entries {
            self.slot(e);
        }
        self.scratch = entries;
    }
}

impl<E: Copy> EventScheduler<E> for CalendarQueue<E> {
    fn new() -> Self {
        CalendarQueue::new()
    }

    fn schedule(&mut self, time: Time, event: E) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let idx = self.alloc(time, seq, event);
        match self.ring.back() {
            // Strictly inside the buffered horizon: bring forward. An
            // exact tie at the horizon goes to the wheel side — the new
            // entry carries the larger seq, so it pops after the ring's
            // back anyway.
            Some(&(horizon, _)) if time < horizon => self.ring_insert(time, idx),
            // At or past the horizon: park on the bulk-commit buffer;
            // the wheel insert is paid in a batch at the next refill.
            _ => self.pending.push((time, idx)),
        }
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        if self.ring.is_empty() {
            self.refill_ring();
        }
        Some(self.take_ring())
    }

    fn pop_if_before(&mut self, bound: Time) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        if self.ring.is_empty() {
            self.refill_ring();
        }
        let &(t, _) = self.ring.front().expect("ring was just refilled");
        if t >= bound {
            return None;
        }
        Some(self.take_ring())
    }

    fn peek(&self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        // The ring's front is the global minimum whenever the ring is
        // non-empty (every wheel-side entry is greater than its back).
        if let Some(&(t, _)) = self.ring.front() {
            return Some(t);
        }
        let mut min: Option<Time> = None;
        if let Some(b) = self.next_nonempty(self.cursor) {
            let (best, _) = self.min_in_bucket(b);
            min = Some(self.arena[best as usize].time);
        } else {
            // Everything wheel-side rides the overflow ladder.
            let mut idx = self.overflow_head;
            while idx != NIL {
                let t = self.arena[idx as usize].time;
                min = Some(min.map_or(t, |m: Time| m.min(t)));
                idx = self.arena[idx as usize].next;
            }
        }
        // Not-yet-committed entries on the bulk-commit buffer can hold
        // the minimum too (`peek` takes `&self`, so it scans instead of
        // flushing; the buffer is at most a refill's worth of entries).
        for &(t, _) in &self.pending {
            min = Some(min.map_or(t, |m: Time| m.min(t)));
        }
        min
    }

    fn len(&self) -> usize {
        self.len
    }

    fn calendar_stats(&self) -> Option<&CalendarStats> {
        Some(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventQueue;

    fn drain<S: EventScheduler<u64>>(s: &mut S) -> Vec<(Time, u64)> {
        std::iter::from_fn(|| s.pop()).collect()
    }

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        q.schedule(3.0, 0);
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(2.0, 3);
        q.schedule(1.0, 4);
        assert_eq!(q.peek(), Some(1.0));
        assert_eq!(
            drain(&mut q),
            vec![(1.0, 1), (1.0, 2), (1.0, 4), (2.0, 3), (3.0, 0)]
        );
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_events_ride_the_overflow_ladder() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        q.schedule(1e12, 0);
        q.schedule(0.5, 1);
        q.schedule(1e9, 2);
        q.schedule(2.0, 3);
        assert_eq!(drain(&mut q), vec![(0.5, 1), (2.0, 3), (1e9, 2), (1e12, 0)]);
    }

    #[test]
    fn insert_before_the_window_reanchors() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        q.schedule(100.0, 0);
        q.schedule(200.0, 1);
        // Earlier than the anchor: must still pop first.
        q.schedule(-5.0, 2);
        assert_eq!(q.peek(), Some(-5.0));
        assert_eq!(drain(&mut q), vec![(-5.0, 2), (100.0, 0), (200.0, 1)]);
    }

    #[test]
    fn pop_if_before_respects_the_bound_and_ties() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        q.schedule(1.0, 0);
        q.schedule(2.0, 1);
        q.schedule(1e10, 2); // overflow ladder
        assert_eq!(q.pop_if_before(0.5), None, "nothing before 0.5");
        assert_eq!(q.pop_if_before(1.0), None, "ties are not popped");
        assert_eq!(q.pop_if_before(1.5), Some((1.0, 0)));
        assert_eq!(q.pop_if_before(3.0), Some((2.0, 1)));
        assert_eq!(q.pop_if_before(1e9), None, "ladder event is later");
        assert_eq!(q.pop_if_before(2e10), Some((1e10, 2)));
        assert_eq!(q.pop_if_before(f64::MAX), None, "empty");
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn grows_and_shrinks_without_losing_events() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let n = 10_000u64;
        for i in 0..n {
            // Deterministic scatter over a wide range, with ties.
            let t = ((i * 2_654_435_761) % 1_000) as f64 * 0.25;
            q.schedule(t, i);
        }
        assert_eq!(q.len(), n as usize);
        // Wheel inserts are bulk-committed at the first refill, so the
        // grow shows up once popping starts.
        let first = q.pop().expect("queue is non-empty");
        assert!(q.heads.len() > MIN_BUCKETS, "wheel must have grown");
        let mut popped = vec![first];
        popped.extend(drain(&mut q));
        assert_eq!(popped.len(), n as usize);
        for w in popped.windows(2) {
            assert!(
                w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1),
                "order violated: {w:?}"
            );
        }
        // Shrinks happen at rebuild points (window advances / grows),
        // so drive a second, much smaller phase with spread-out times
        // (large enough that the bring-forward ring overflows into the
        // wheel): its window advances must shrink the wheel back down.
        let peak = q.heads.len();
        let m = 128u64;
        for i in 0..m {
            q.schedule(1e6 + (i * 97) as f64, i);
        }
        let tail = drain(&mut q);
        assert_eq!(tail.len(), m as usize);
        assert!(
            q.heads.len() < peak && q.heads.len() <= m as usize * BUCKETS_PER_EVENT,
            "wheel must shrink at window advances: peak {peak}, now {}",
            q.heads.len()
        );
    }

    #[test]
    fn slab_reuses_slots_in_steady_state() {
        // A hold pattern (schedule one, pop one) must not grow the
        // arena past the peak population: every pop feeds the free
        // list, every schedule consumes it.
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        for i in 0..64 {
            q.schedule(i as f64, i);
        }
        let peak = q.arena.len();
        let mut now = 0.0f64;
        for i in 64..50_000u64 {
            let (t, _) = q.pop().unwrap();
            now = now.max(t);
            q.schedule(now + 1.0 + (i % 17) as f64, i);
        }
        assert_eq!(q.len(), 64);
        assert_eq!(
            q.arena.len(),
            peak,
            "steady-state churn must recycle slots, not grow the arena"
        );
    }

    #[test]
    fn matches_binary_heap_on_an_interleaved_workload() {
        // A simulation-shaped drive: alternating schedule/pop with the
        // clock advancing, plus periodic tie bursts and far futures.
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut heap: EventQueue<u64> = EventQueue::new();
        let mut id = 0u64;
        let mut sched = |cal: &mut CalendarQueue<u64>, heap: &mut EventQueue<u64>, t: f64| {
            cal.schedule(t, id);
            EventScheduler::schedule(heap, t, id);
            id += 1;
        };
        let mut now = 0.0f64;
        for step in 0..5_000u64 {
            let dt = ((step * 48_271) % 997) as f64 / 100.0;
            sched(&mut cal, &mut heap, now + dt);
            if step % 7 == 0 {
                sched(&mut cal, &mut heap, now + dt); // exact tie
            }
            if step % 101 == 0 {
                sched(&mut cal, &mut heap, now + 1e9); // ladder event
            }
            if step % 3 != 0 {
                let a = cal.pop();
                let b = EventScheduler::pop(&mut heap);
                assert_eq!(a, b, "divergence at step {step}");
                if let Some((t, _)) = a {
                    now = now.max(t);
                }
            }
            assert_eq!(cal.len(), EventScheduler::len(&heap));
        }
        assert_eq!(
            drain(&mut cal),
            std::iter::from_fn(|| heap.pop()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_ties_degenerate_population() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        for i in 0..1_000 {
            q.schedule(42.0, i);
        }
        let popped = drain(&mut q);
        assert_eq!(popped.len(), 1_000);
        assert!(popped.windows(2).all(|w| w[0].1 < w[1].1), "FIFO on ties");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_time_rejected() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        q.schedule(f64::INFINITY, 0);
    }
}
