//! Routing policies: which server a new job joins.

use crate::server::Server;
use bnb_distributions::Xoshiro256PlusPlus;

/// How an arriving job picks its server among the `d` sampled candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Join the candidate minimising the *normalised* post-join queue
    /// `(q_i + 1)/c_i`, ties towards the faster server — the queueing
    /// analog of the paper's Algorithm 1.
    #[default]
    ShortestNormalizedQueue,
    /// Classic JSQ(d): join the candidate with the fewest jobs,
    /// ignoring speeds; ties uniform.
    ShortestQueue,
    /// Join a uniformly random candidate (one-choice behaviour).
    Random,
}

impl RoutingPolicy {
    /// Applies the policy over `candidates` (indices into `servers`,
    /// duplicates treated as a set).
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn choose(
        &self,
        servers: &[Server],
        candidates: &[usize],
        rng: &mut Xoshiro256PlusPlus,
    ) -> usize {
        assert!(!candidates.is_empty(), "need at least one candidate");
        match self {
            RoutingPolicy::Random => candidates[rng.next_below(candidates.len() as u64) as usize],
            RoutingPolicy::ShortestQueue => {
                pick_min(candidates, rng, |i| (servers[i].queue_len(), 0))
            }
            RoutingPolicy::ShortestNormalizedQueue => pick_min(candidates, rng, |i| {
                // Exact rational order via cross-multiplication is
                // delegated to bnb_core::Load; tuple with inverted speed
                // implements the capacity tie-break.
                (servers[i].post_join_load(), u64::MAX - servers[i].speed())
            }),
        }
    }
}

/// Reservoir-tied argmin over the candidate *set*.
fn pick_min<K: Ord>(
    candidates: &[usize],
    rng: &mut Xoshiro256PlusPlus,
    key: impl Fn(usize) -> K,
) -> usize {
    let mut best = candidates[0];
    let mut best_key = key(best);
    let mut ties = 1u64;
    for idx in 1..candidates.len() {
        let cand = candidates[idx];
        if candidates[..idx].contains(&cand) {
            continue;
        }
        let k = key(cand);
        match k.cmp(&best_key) {
            std::cmp::Ordering::Less => {
                best = cand;
                best_key = k;
                ties = 1;
            }
            std::cmp::Ordering::Equal => {
                ties += 1;
                if rng.next_below(ties) == 0 {
                    best = cand;
                }
            }
            std::cmp::Ordering::Greater => {}
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers() -> Vec<Server> {
        // speeds 1 and 10; give the fast one 4 queued jobs.
        let mut v = vec![Server::new(1), Server::new(10)];
        for t in 0..4 {
            v[1].join(t as f64);
        }
        v
    }

    #[test]
    fn shortest_queue_ignores_speed() {
        let s = servers();
        let mut rng = Xoshiro256PlusPlus::from_u64_seed(1);
        // q = 0 vs 4: plain JSQ picks the empty slow server.
        assert_eq!(
            RoutingPolicy::ShortestQueue.choose(&s, &[0, 1], &mut rng),
            0
        );
    }

    #[test]
    fn normalized_queue_prefers_fast_server() {
        let s = servers();
        let mut rng = Xoshiro256PlusPlus::from_u64_seed(2);
        // post-join: 1/1 = 1 vs 5/10 = 0.5: normalised JSQ picks fast.
        assert_eq!(
            RoutingPolicy::ShortestNormalizedQueue.choose(&s, &[0, 1], &mut rng),
            1
        );
    }

    #[test]
    fn speed_tiebreak_on_equal_normalized_queue() {
        // (q+1)/c equal: 1/2 vs 5/10 -> 0.5 == 0.5; pick the faster.
        let mut v = vec![Server::new(2), Server::new(10)];
        for t in 0..4 {
            v[1].join(t as f64);
        }
        let mut rng = Xoshiro256PlusPlus::from_u64_seed(3);
        for _ in 0..20 {
            assert_eq!(
                RoutingPolicy::ShortestNormalizedQueue.choose(&v, &[0, 1], &mut rng),
                1
            );
        }
    }

    #[test]
    fn duplicate_candidates_do_not_bias() {
        let v = vec![Server::new(1), Server::new(1)];
        let mut rng = Xoshiro256PlusPlus::from_u64_seed(4);
        let picks0 = (0..10_000)
            .filter(|_| RoutingPolicy::ShortestQueue.choose(&v, &[0, 0, 1], &mut rng) == 0)
            .count();
        assert!((4000..6000).contains(&picks0), "{picks0}");
    }

    #[test]
    fn random_policy_is_uniform_over_list() {
        let v = vec![Server::new(1), Server::new(1)];
        let mut rng = Xoshiro256PlusPlus::from_u64_seed(5);
        let picks0 = (0..10_000)
            .filter(|_| RoutingPolicy::Random.choose(&v, &[0, 1], &mut rng) == 0)
            .count();
        assert!((4000..6000).contains(&picks0), "{picks0}");
    }
}
