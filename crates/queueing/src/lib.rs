//! # bnb-queueing
//!
//! A discrete-event queueing substrate for the *Balls into non-uniform
//! bins* reproduction.
//!
//! The paper insists (§1) that a bin's "capacity" is not a volume limit
//! but *"speed, bandwidth or compression ratio"*. The static game is the
//! snapshot view; the dynamic view is a queueing system: `n` servers
//! where server `i` drains work at rate `c_i`, jobs arrive in a Poisson
//! stream, and the d-choice protocol becomes **JSQ(d)** — join the
//! shortest of `d` sampled queues (Mitzenmacher's supermarket model,
//! generalised to heterogeneous speeds and capacity-proportional
//! sampling).
//!
//! * [`events`] — the pluggable event-scheduler core: the
//!   [`EventScheduler`] trait (earliest-first, FIFO-on-ties determinism
//!   contract), the binary-heap [`EventQueue`] reference implementation,
//!   and the simulation clock — generic over the event payload, so
//!   richer simulators such as `bnb-cluster` reuse it,
//! * [`calendar`] — the [`CalendarQueue`]: a bucketed timing wheel with
//!   dynamic bucket-width resizing and an overflow ladder, the amortised
//!   O(1) general-purpose scheduler of the simulators,
//! * [`lazy`] — the [`LazyBoard`]: slot-keyed lazy deletion for the
//!   at-most-one-event-per-slot workload (O(1) overwrite schedules, a
//!   stale-tolerant candidate ring validated on pop) — the cluster's
//!   fused-loop departure scheduler,
//! * [`board`] — the [`SlotBoard`]: the eager tournament-tree
//!   alternative over the same slot-keyed workload, kept as the naive
//!   baseline the lazy board is benched against,
//! * [`server`] — heterogeneous-speed server state with time-integrated
//!   queue-length accounting and optional finite queues with drop
//!   counting,
//! * [`router`] — routing policies (JSQ(d) with the paper's capacity
//!   tie-break, least-work, random),
//! * [`stats`] — always-on scheduler-internals telemetry: the
//!   [`CalendarStats`] block behind the calendar's amortised-O(1)
//!   claim (ring refills/spills, bulk-commit drains, rebuilds,
//!   occupancy-at-rebuild distributions),
//! * [`system`] — the simulator: arrivals, departures, metrics.
//!
//! The test-suite verifies textbook laws (M/M/1 mean queue length,
//! stability for ρ < 1, the d=1 → d=2 collapse of the maximum queue,
//! bounded queues and counted drops under overload) so the substrate can
//! be trusted under the extension experiment E6 and the cluster
//! simulator built on top of it.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod board;
pub mod calendar;
pub mod events;
pub mod lazy;
pub mod router;
pub mod server;
pub mod stats;
pub mod system;

pub use board::SlotBoard;
pub use calendar::CalendarQueue;
pub use events::{EventQueue, EventScheduler};
pub use lazy::LazyBoard;
pub use router::RoutingPolicy;
pub use server::{Admission, Server};
pub use stats::{CalendarStats, LazyStats};
pub use system::{QueueMetrics, QueueSystem, SystemConfig};
