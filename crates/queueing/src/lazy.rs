//! The [`LazyBoard`]: a slot-keyed **lazy-deletion** scheduler for
//! workloads with at most one pending event per slot.
//!
//! The cluster serving loop keeps exactly one pending departure per
//! busy server, over a fixed slot universe. Both general schedulers
//! pay structural costs that workload never needs — the heap its
//! `log n` sift, the calendar wheel its arena, bucket chains, ring
//! refills and sorted-bucket maintenance — and even the eager
//! tournament board ([`SlotBoard`](crate::SlotBoard)) replays `log n`
//! compare rounds on *every* schedule and pop. The lazy board drops
//! all of it:
//!
//! * **Authoritative state is one dense array.** `schedule(slot, t)`
//!   writes a packed `(time, seq)` key into a per-slot array — one
//!   store, no heap insert, no bucket chain, no tree replay; the time
//!   round-trips exactly through the key's monotone bit map, so no raw
//!   time is stored anywhere. Rescheduling a slot that already has a
//!   pending entry is the *same* one store: the old entry is not
//!   deleted, it is superseded (the key embeds a fresh insertion
//!   sequence) and collected lazily later.
//! * **Candidates live in unsorted bags.** Each schedule also appends
//!   a `(time bits, slot)` candidate — never a sorted insert, never a
//!   memmove — to the bag of its *global* bag index `g`: the key's
//!   monotone time bits shifted right (the board's `shift` below),
//!   pure integer, monotone in the time. A cursor lap covers
//!   `BAGS` consecutive indices mapped onto physical bags by `g mod
//!   BAGS`; candidates beyond the lap park in an overflow vector, and
//!   candidates behind the cursor (a schedule into the past) drop into
//!   the cursor's own bag, which therefore may mix indices — harmless,
//!   because ordering never relies on bag membership alone.
//! * **`pop` is a branchless argmin over one small bag, validated
//!   against the authoritative array.** The cursor's bag holds every
//!   candidate that could be the front (see the invariant below); a
//!   short compare/select scan finds its minimal time bits, one
//!   compare against the winning slot's authoritative key catches both
//!   overwrites and already-popped slots (sequence numbers are
//!   globally unique), and stale candidates are swept on contact.
//!   Exact-time ties fall to a cold path that re-compares the tying
//!   candidates' *live* keys, so the insertion sequence breaks ties
//!   exactly as a heap would. A drained bag advances the cursor one
//!   index (`O(1)`, no scan); a drained lap refills from the overflow
//!   vector, jumping the cursor straight to the earliest parked index
//!   when the near window is dry. The bag geometry (the shift) is
//!   re-derived from the live population's measured head spread when a
//!   bag outgrows `BAG_CAP` — the escape hatch for time-scale drift,
//!   never on the steady-state path.
//! * **Front probes are cached.** The located front `(key, slot, bag
//!   position)` is memoized; the refusal side of
//!   [`LazyBoard::pop_if_before`] — which the cluster's fused drain
//!   loop takes once per arrival — and [`LazyBoard::min_time_bound`]
//!   revalidate it with two compares instead of rescanning, and the
//!   following take removes it by position without relocating. A
//!   schedule below the cached key *becomes* the cache (it provably
//!   lands in the cursor's bag); an overwrite of the cached slot fails
//!   the full-key revalidation by construction.
//!
//! Determinism: pops are ordered by `(time, insertion sequence)` —
//! byte-for-byte the order of [`EventQueue`](crate::EventQueue) and
//! [`CalendarQueue`](crate::CalendarQueue) — because the packed key is
//! lexicographic in exactly those fields (`total_cmp` order on the
//! time, via the monotone bit map), and the cursor invariant makes the
//! cursor-bag argmin the global front: a candidate is only ever placed
//! at a bag position at or ahead of the cursor, and the cursor only
//! advances past empty bags, so the earliest live entry's candidate is
//! always in the first non-empty bag the cursor meets, with only
//! stale or equal-index candidates before it. The oracle proptest
//! drives the board against an independent lazy-deletion binary heap
//! through overwrite storms, tie storms and `pop_if_before` window
//! edges and requires identical output streams.
//!
//! Unlike the general schedulers, scheduling here is **keyed**: a
//! second `schedule` for the same slot *replaces* the pending entry
//! instead of adding a sibling. The [`EventScheduler<u32>`] impl
//! documents the same deviation — callers that need multiset semantics
//! want the heap or the calendar, not this board.

use crate::events::{EventScheduler, Time};
use crate::stats::LazyStats;

/// Authoritative key of an idle slot: `u128::MAX` compares above every
/// live key (finite times map strictly below the all-ones prefix, and
/// the sequence half is a counter far from `u64::MAX`).
const IDLE_KEY: u128 = u128::MAX;

/// Physical bags one cursor lap folds onto. A power of two, so the
/// fold is a mask.
const BAGS: usize = 32;

/// How many of the earliest live entries inform the shift estimate at
/// a rebuild, and how many pops must separate two rebuilds (the
/// tie-storm guard bounding rebuild work per pop).
const TARGET_FILL: usize = 32;

/// Entries sharing one global bag index the shift estimate aims for:
/// the head spread covers about `TARGET_FILL / GSLOT_FILL` indices.
/// Small enough that the argmin scan stays a couple of L1 lines,
/// large enough that the cursor advances only every few pops.
const GSLOT_FILL: u64 = 8;

/// Initial key shift before any rebuild has observed real gaps: g
/// changes when an event time's top ~16 bits do — a unit-scale guess
/// that the first bag-cap rebuild replaces with a measured one.
const INITIAL_SHIFT: u32 = 48;

/// Argmin-scan cost bound: a bag holding more candidates than this
/// triggers a geometry rebuild (time-scale drift), rate-limited by
/// [`TARGET_FILL`] pops between rebuilds so exact-tie storms — which
/// no shift can spread — degrade to a bounded scan instead of
/// rebuild thrash.
const BAG_CAP: usize = 16;

/// Remaps an `f64`'s bits so unsigned integer order matches
/// `total_cmp` order (the classic radix-sort float map — shared idiom
/// with [`SlotBoard`](crate::SlotBoard)).
#[inline]
fn monotone_bits(t: Time) -> u64 {
    let b = t.to_bits();
    let mask = (((b as i64) >> 63) as u64) | (1 << 63);
    b ^ mask
}

/// Inverts [`monotone_bits`]: recovers the event time from a key's
/// upper half. The round trip is exact, so the board stores no raw
/// times at all — the key array is the entire authoritative state.
#[inline]
fn unpack_hi(m: u64) -> Time {
    let mask = if m & (1 << 63) != 0 {
        1 << 63
    } else {
        u64::MAX
    };
    Time::from_bits(m ^ mask)
}

/// Recovers the event time from a packed key.
#[inline]
fn unpack_time(key: u128) -> Time {
    unpack_hi((key >> 64) as u64)
}

/// A slot-keyed lazy-deletion event scheduler: at most one pending
/// `(time, slot)` entry per slot, O(1) overwrite on reschedule, pops
/// in `(time, insertion sequence)` order via candidate validation.
///
/// See the module docs for the mechanism. The slot universe grows on
/// demand ([`LazyBoard::schedule`] accepts any slot), or can be
/// pre-sized with [`LazyBoard::with_slots`].
#[derive(Debug, Clone)]
pub struct LazyBoard {
    /// Authoritative packed `(time, seq)` key per slot; [`IDLE_KEY`]
    /// when the slot has no pending entry. The single source of truth
    /// every candidate is validated against.
    keys: Vec<u128>,
    /// Unsorted candidate `(time bits, slot)` pairs per physical bag.
    /// Entries of one bag share a global bag index (plus any
    /// behind-cursor candidates dumped into the cursor's bag); pops
    /// argmin-scan the cursor's bag only.
    bags: [Vec<(u64, u32)>; BAGS],
    /// Candidates whose global bag index lies beyond the current lap,
    /// unsorted. Swept into bags (and stale-swept) at lap refills.
    over: Vec<(u64, u32)>,
    /// Cursor: the global bag index being drained. Candidates are
    /// never placed behind it, and it only advances past empty bags.
    glob: u64,
    /// First global bag index beyond the current lap: `over` holds
    /// every candidate at or past this.
    lap_end: u64,
    /// Bag geometry: a candidate's global bag index is its key's
    /// monotone time bits shifted right by this — pure integer, no
    /// float on the hot path; bag widths track the time's binade
    /// (they double across exponent ranges), which is harmless — only
    /// monotonicity and rough occupancy matter. Re-derived from the
    /// measured head spread at each rebuild.
    shift: u32,
    /// Memoized front: `(key, slot, bag position)` of the last entry
    /// [`LazyBoard::front`] located in the cursor's bag, or
    /// `(`[`IDLE_KEY`]`, ..)` for none. Valid as long as the bag entry
    /// at that position and the authoritative key both still match —
    /// schedules only append (positions are stable) or replace the
    /// cache when they beat it, sweeps and takes relocate or clear.
    front: (u128, u32, u32),
    /// Candidates currently in bags (stale ones included): the
    /// cursor-advance dry test, so an empty near window jumps straight
    /// to the refill instead of probing bags one by one.
    near: usize,
    /// Pops since the last geometry rebuild (the rebuild rate limit).
    pops_since_rebuild: u64,
    /// Rebuild scratch: live time bits, reused so the geometry
    /// re-derivation never allocates.
    scratch: Vec<u64>,
    /// Live (pending) entries — authoritative count, not candidates.
    len: usize,
    /// Next insertion sequence number (globally unique, never reused:
    /// key equality therefore implies the candidate is current).
    seq: u64,
    /// Always-on internals counters.
    stats: LazyStats,
}

impl Default for LazyBoard {
    fn default() -> Self {
        LazyBoard {
            keys: Vec::new(),
            bags: std::array::from_fn(|_| Vec::new()),
            over: Vec::new(),
            glob: 0,
            lap_end: BAGS as u64,
            shift: INITIAL_SHIFT,
            front: (IDLE_KEY, 0, 0),
            near: 0,
            pops_since_rebuild: 0,
            scratch: Vec::new(),
            len: 0,
            seq: 0,
            stats: LazyStats::default(),
        }
    }
}

impl LazyBoard {
    /// Creates an empty board; the slot universe grows as slots are
    /// first scheduled.
    #[must_use]
    pub fn new() -> Self {
        LazyBoard::default()
    }

    /// Creates a board pre-sized for slots `0..slots`, all idle — the
    /// embedding form: one allocation, then the hot path never grows.
    #[must_use]
    pub fn with_slots(slots: usize) -> Self {
        let mut board = LazyBoard::new();
        board.ensure_slot(slots.saturating_sub(1));
        board
    }

    /// Number of slots the board currently covers.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Live (pending) entries on the board.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the board has no pending entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The board's always-on internals counters.
    #[must_use]
    pub fn stats(&self) -> &LazyStats {
        &self.stats
    }

    /// Grows the authoritative array to cover `slot`.
    #[inline]
    fn ensure_slot(&mut self, slot: usize) {
        if slot >= self.keys.len() {
            self.keys.resize(slot + 1, IDLE_KEY);
        }
    }

    /// Schedules (or **reschedules**) `slot`'s pending event at `time`.
    ///
    /// If the slot already has a pending entry it is superseded in
    /// place — one store, no search; the old entry's bag candidate
    /// dies lazily on contact. The fresh entry gets a new insertion
    /// sequence, so among exact time ties it pops after everything
    /// already scheduled, exactly as a heap insert would.
    ///
    /// `inline(always)`: the body is a couple of stores and a push,
    /// but it sits past the inliner's default threshold, and an
    /// outlined `schedule` costs more than the work it does.
    ///
    /// # Panics
    /// Panics if `time` is not finite (the [`EventScheduler`]
    /// contract) or `slot` does not fit the `u32` candidate index.
    #[inline(always)]
    pub fn schedule(&mut self, slot: u32, time: Time) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        self.ensure_slot(slot as usize);
        let hi = monotone_bits(time);
        let key = (u128::from(hi) << 64) | u128::from(self.seq);
        self.seq += 1;
        let old = self.keys[slot as usize];
        self.len += usize::from(old == IDLE_KEY);
        self.stats.overwrites += u64::from(old != IDLE_KEY);
        self.stats.ring_inserts += 1;
        self.keys[slot as usize] = key;
        let g = hi >> self.shift;
        if g < self.lap_end {
            // In-lap (or behind-cursor) candidate: append to its bag —
            // no sorted insert, no shift of anything.
            let b = (g.max(self.glob) as usize) & (BAGS - 1);
            self.bags[b].push((hi, slot));
            self.near += 1;
            // A candidate beating the cached front always lands in the
            // cursor's bag (its index can only be at or behind the
            // cached one), so it *becomes* the cache; ties keep the
            // cache (earlier sequence pops first). An *invalid* cache
            // must stay invalid — every finite key beats the sentinel,
            // but nothing proves it beats the uncached population.
            if self.front.0 != IDLE_KEY && key < self.front.0 {
                self.front = (key, slot, (self.bags[b].len() - 1) as u32);
            }
        } else {
            self.over.push((hi, slot));
        }
    }

    /// Locates the front of the queue — the earliest live `(time,
    /// seq)` entry — as `(key, slot, position in the cursor's bag)`,
    /// sweeping stale candidates and advancing the cursor along the
    /// way. Memoizes the result. Callers guarantee `len > 0`.
    #[inline]
    fn locate(&mut self) -> (u128, u32, u32) {
        loop {
            let b = (self.glob as usize) & (BAGS - 1);
            if self.bags[b].is_empty() {
                self.advance();
                continue;
            }
            if self.bags[b].len() > BAG_CAP && self.pops_since_rebuild > TARGET_FILL as u64 {
                self.rebuild();
                continue;
            }
            // Branchless argmin over the bag's time bits, counting
            // exact-tie collisions on the fly (the select chain is
            // short — bag occupancy is a handful of entries).
            let bag = &self.bags[b];
            let mut m = u64::MAX;
            let mut pos = 0usize;
            let mut ties = 0usize;
            for (i, &(h, _)) in bag.iter().enumerate() {
                let lt = h < m;
                ties = usize::from(h == m) + if lt { 0 } else { ties };
                m = if lt { h } else { m };
                pos = if lt { i } else { pos };
            }
            let (h, s) = bag[pos];
            let key = self.keys[s as usize];
            if (key >> 64) as u64 != h {
                // Superseded or already popped: sweep and retry.
                self.stats.stale_pops += 1;
                self.bags[b].swap_remove(pos);
                self.near -= 1;
                continue;
            }
            if ties > 0 {
                if let Some(found) = self.tie_locate(b, m) {
                    self.front = found;
                    return found;
                }
                continue;
            }
            let found = (key, s, pos as u32);
            self.front = found;
            return found;
        }
    }

    /// Exact-time tie in the cursor's bag: order among ties is by
    /// insertion sequence, which lives in the *authoritative* keys
    /// (an overwrite at the same time moves the slot behind the tie),
    /// so the tying candidates' live keys are compared directly.
    /// Returns `None` if every tying candidate turned out stale.
    #[cold]
    fn tie_locate(&mut self, b: usize, m: u64) -> Option<(u128, u32, u32)> {
        // Phase 1: sweep stale candidates tying the minimal time.
        let mut i = 0;
        while i < self.bags[b].len() {
            let (h, s) = self.bags[b][i];
            if h == m && (self.keys[s as usize] >> 64) as u64 != h {
                self.stats.stale_pops += 1;
                self.bags[b].swap_remove(i);
                self.near -= 1;
                continue;
            }
            i += 1;
        }
        // Phase 2: minimal live key (the sequence breaks the tie).
        let mut best: Option<(u128, u32, u32)> = None;
        for (i, &(h, s)) in self.bags[b].iter().enumerate() {
            if h == m {
                let key = self.keys[s as usize];
                if best.is_none_or(|(bk, _, _)| key < bk) {
                    best = Some((key, s, i as u32));
                }
            }
        }
        best
    }

    /// Advances the cursor past a drained bag: one step while the near
    /// window still holds candidates, otherwise straight to the lap
    /// refill.
    #[inline]
    fn advance(&mut self) {
        if self.near == 0 {
            self.glob = self.lap_end;
            self.refill();
        } else {
            // Some bag ahead in this lap is non-empty, so the step
            // stays inside the lap.
            self.glob += 1;
            debug_assert!(self.glob < self.lap_end);
        }
    }

    /// Starts the next lap: sweeps the overflow vector, moving (live)
    /// candidates that now fall inside the lap window into their bags
    /// and dropping superseded ones. When everything parked lies
    /// beyond even this lap, jumps the cursor to the earliest parked
    /// index and tries again — so a far-future cohort costs one sweep,
    /// not a lap-by-lap crawl.
    #[cold]
    fn refill(&mut self) {
        loop {
            self.lap_end = self.glob + BAGS as u64;
            let mut min_far = u64::MAX;
            let mut moved = false;
            let mut i = 0;
            while i < self.over.len() {
                let (h, s) = self.over[i];
                if (self.keys[s as usize] >> 64) as u64 != h {
                    // Superseded while parked: never reaches a bag.
                    self.stats.ring_drops += 1;
                    self.over.swap_remove(i);
                    continue;
                }
                let g = h >> self.shift;
                if g < self.lap_end {
                    let b = (g.max(self.glob) as usize) & (BAGS - 1);
                    self.bags[b].push((h, s));
                    self.near += 1;
                    self.over.swap_remove(i);
                    moved = true;
                } else {
                    min_far = min_far.min(g);
                    i += 1;
                }
            }
            if moved || self.over.is_empty() {
                return;
            }
            // Everything live is parked beyond this lap: jump.
            self.glob = min_far;
        }
    }

    /// Re-derives the bag geometry from the live population and
    /// redistributes every live entry (dropping all stale candidates
    /// wholesale) — the escape hatch for an anchor shift that drifted
    /// orders of magnitude off the actual event gaps, paid only when a
    /// bag outgrows [`BAG_CAP`], never on the steady-state path.
    #[cold]
    fn rebuild(&mut self) {
        self.stats.rebuild_scans += 1;
        self.stats.slots_scanned += self.keys.len() as u64;
        self.pops_since_rebuild = 0;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend(
            self.keys
                .iter()
                .filter(|&&k| k != IDLE_KEY)
                .map(|&k| (k >> 64) as u64),
        );
        debug_assert_eq!(scratch.len(), self.len);
        scratch.sort_unstable();
        // Brown's width estimate, slot-keyed integer edition: the gap
        // that matters is among the earliest ~TARGET_FILL entries (the
        // full span is stretched arbitrarily by service-time tails).
        // Pick the shift so their spread covers about `k / GSLOT_FILL`
        // bag indices — ~GSLOT_FILL entries per bag. Tie storms
        // collapse the spread to ~0: the `.max(2)` floor then shifts
        // everything into one bag, where the argmin (and its tie path)
        // alone carries the day.
        let k = scratch.len().min(TARGET_FILL);
        let spread = (scratch[k - 1] - scratch[0]) / (k as u64 / GSLOT_FILL).max(1);
        self.shift = spread.max(2).ilog2();
        self.glob = scratch[0] >> self.shift;
        self.lap_end = self.glob + BAGS as u64;
        self.scratch = scratch;
        for bag in &mut self.bags {
            bag.clear();
        }
        self.over.clear();
        self.near = 0;
        self.front = (IDLE_KEY, 0, 0);
        for (slot, &key) in self.keys.iter().enumerate() {
            if key != IDLE_KEY {
                let hi = (key >> 64) as u64;
                let g = hi >> self.shift;
                if g < self.lap_end {
                    let b = (g as usize) & (BAGS - 1);
                    self.bags[b].push((hi, slot as u32));
                    self.near += 1;
                } else {
                    self.over.push((hi, slot as u32));
                }
            }
        }
    }

    /// The validated front `(key, slot, bag position)`: the memoized
    /// probe when it still holds — two compares — else a relocation.
    #[inline]
    fn front(&mut self) -> (u128, u32, u32) {
        debug_assert!(self.len > 0);
        let (key, s, p) = self.front;
        if key != IDLE_KEY {
            // Position still holds this candidate, and the slot's
            // authoritative key is still this key (an overwrite — even
            // at the same time — changes the sequence half and fails
            // the compare; a smaller newcomer replaced the cache in
            // `schedule`).
            let b = (self.glob as usize) & (BAGS - 1);
            if self.bags[b].get(p as usize) == Some(&((key >> 64) as u64, s))
                && self.keys[s as usize] == key
            {
                return (key, s, p);
            }
        }
        self.locate()
    }

    /// Removes the validated front — `(key, slot, pos)` as returned by
    /// [`LazyBoard::front`] — and marks its slot idle.
    #[inline]
    fn take_front(&mut self, key: u128, slot: u32, pos: u32) -> (Time, u32) {
        let b = (self.glob as usize) & (BAGS - 1);
        debug_assert_eq!(self.bags[b][pos as usize], (((key >> 64) as u64), slot));
        self.bags[b].swap_remove(pos as usize);
        self.near -= 1;
        self.pops_since_rebuild += 1;
        self.keys[slot as usize] = IDLE_KEY;
        self.len -= 1;
        self.front = (IDLE_KEY, 0, 0);
        (unpack_time(key), slot)
    }

    /// Pops the earliest `(time, seq)` entry as `(time, slot)`,
    /// discarding stale candidates until the true minimum surfaces.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, u32)> {
        if self.len == 0 {
            return None;
        }
        let (key, slot, pos) = self.front();
        Some(self.take_front(key, slot, pos))
    }

    /// Pops the earliest entry if it is strictly before `bound`
    /// (arrival merges: the bound wins exact ties). The refusal path
    /// revalidates the memoized front and compares — the fused drain
    /// loop calls this once per arrival, so refusals are the common
    /// outcome and stay off the scan path.
    #[inline]
    pub fn pop_if_before(&mut self, bound: Time) -> Option<(Time, u32)> {
        if self.len == 0 {
            return None;
        }
        let (key, slot, pos) = self.front();
        if unpack_time(key) >= bound {
            return None;
        }
        Some(self.take_front(key, slot, pos))
    }

    /// Internal geometry snapshot for diagnostics: `(key shift,
    /// indexed candidates, per-bag candidate counts)`.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_geometry(&self) -> (u32, usize, Vec<usize>) {
        (
            self.shift,
            self.near + self.over.len(),
            self.bags.iter().map(Vec::len).collect(),
        )
    }

    /// Time of the earliest pending entry. Read-only, so it answers
    /// from the authoritative array directly: the minimum live key is
    /// the front, stale bag candidates notwithstanding.
    #[must_use]
    pub fn peek(&self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        let best = self.keys.iter().copied().min().expect("live entries exist");
        Some(unpack_time(best))
    }

    /// Time of the earliest pending entry, located through the bags
    /// (sweeping stale front candidates — hence `&mut`). This is the
    /// fused loop's `next_free` fast-path test: `t < min_time_bound()`
    /// proves `t` beats every pending departure. The name is
    /// contractual — callers may rely on it as a lower bound — but the
    /// front candidate is validated, so the value returned is in fact
    /// exact.
    #[inline]
    #[must_use]
    pub fn min_time_bound(&mut self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        let (key, _, _) = self.front();
        Some(unpack_time(key))
    }
}

/// The [`EventScheduler`] view of the board, with the payload as the
/// slot key — **slot-keyed overwrite semantics**: scheduling a payload
/// that already has a pending entry replaces it instead of adding a
/// sibling. Under the one-pending-per-slot discipline the cluster's
/// fused loop maintains (schedule only on idle→busy or straight after
/// the slot's pop), the deviation is unobservable and the pop stream
/// is byte-identical to the heap's; callers needing multiset semantics
/// want [`EventQueue`](crate::EventQueue) or
/// [`CalendarQueue`](crate::CalendarQueue).
impl EventScheduler<u32> for LazyBoard {
    fn new() -> Self {
        LazyBoard::new()
    }

    fn schedule(&mut self, time: Time, event: u32) {
        LazyBoard::schedule(self, event, time);
    }

    fn pop(&mut self) -> Option<(Time, u32)> {
        LazyBoard::pop(self)
    }

    fn peek(&self) -> Option<Time> {
        LazyBoard::peek(self)
    }

    fn pop_if_before(&mut self, bound: Time) -> Option<(Time, u32)> {
        LazyBoard::pop_if_before(self, bound)
    }

    fn len(&self) -> usize {
        LazyBoard::len(self)
    }

    fn lazy_stats(&self) -> Option<&LazyStats> {
        Some(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventQueue;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut b = LazyBoard::with_slots(8);
        b.schedule(3, 5.0);
        b.schedule(1, 2.0);
        b.schedule(4, 2.0);
        b.schedule(0, 9.0);
        assert_eq!(b.peek(), Some(2.0));
        assert_eq!(b.pop(), Some((2.0, 1)), "earlier seq wins the tie");
        assert_eq!(b.pop(), Some((2.0, 4)));
        assert_eq!(b.pop(), Some((5.0, 3)));
        assert_eq!(b.pop(), Some((9.0, 0)));
        assert_eq!(b.pop(), None);
        assert!(b.is_empty());
    }

    #[test]
    fn overwrite_replaces_and_reorders() {
        let mut b = LazyBoard::with_slots(4);
        b.schedule(0, 5.0);
        b.schedule(1, 7.0);
        // Slot 0 rescheduled later than slot 1: the old 5.0 entry must
        // never pop.
        b.schedule(0, 9.0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop(), Some((7.0, 1)));
        assert_eq!(b.pop(), Some((9.0, 0)));
        assert_eq!(b.pop(), None);
        assert_eq!(b.stats().overwrites, 1);
        assert!(
            b.stats().stale_pops + b.stats().ring_drops >= 1,
            "the 5.0 candidate died lazily (in a bag or parked)"
        );
    }

    #[test]
    fn same_time_overwrite_moves_the_slot_behind_the_tie() {
        // Slot 0 at t=1 (seq 0), slot 1 at t=1 (seq 1), then slot 0
        // *rescheduled* to the same t=1 (seq 2): the overwrite must
        // push slot 0 behind slot 1 in the tie order, exactly as a
        // heap delete+reinsert would.
        let mut b = LazyBoard::with_slots(2);
        b.schedule(0, 1.0);
        b.schedule(1, 1.0);
        b.schedule(0, 1.0);
        assert_eq!(b.pop(), Some((1.0, 1)));
        assert_eq!(b.pop(), Some((1.0, 0)));
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn pop_if_before_respects_the_bound_and_ties() {
        let mut b = LazyBoard::with_slots(4);
        b.schedule(2, 1.0);
        b.schedule(0, 2.0);
        assert_eq!(b.pop_if_before(0.5), None);
        assert_eq!(b.pop_if_before(1.0), None, "ties are not popped");
        assert_eq!(b.pop_if_before(1.5), Some((1.0, 2)));
        assert_eq!(b.pop_if_before(f64::MAX), Some((2.0, 0)));
        assert_eq!(b.pop_if_before(f64::MAX), None, "empty");
    }

    #[test]
    fn negative_and_zero_times_order_correctly() {
        // total_cmp order like the general schedulers: -0.0 < 0.0.
        let mut b = LazyBoard::with_slots(4);
        b.schedule(0, 0.0);
        b.schedule(1, -3.5);
        b.schedule(2, 2.0);
        b.schedule(3, -0.0);
        assert_eq!(b.pop(), Some((-3.5, 1)));
        assert_eq!(b.pop(), Some((-0.0, 3)));
        assert_eq!(b.pop(), Some((0.0, 0)));
        assert_eq!(b.pop(), Some((2.0, 2)));
    }

    #[test]
    fn grows_on_demand_and_min_bound_is_a_lower_bound() {
        let mut b = LazyBoard::new();
        assert_eq!(b.slots(), 0);
        b.schedule(100, 4.0);
        assert_eq!(b.slots(), 101);
        assert!(b.min_time_bound().is_some_and(|t| t <= 4.0));
        b.schedule(3, 1.0);
        assert!(b.min_time_bound().is_some_and(|t| t <= 1.0));
        assert_eq!(b.pop(), Some((1.0, 3)));
        assert_eq!(b.pop(), Some((4.0, 100)));
    }

    #[test]
    fn reschedule_storm_is_rediscovered() {
        // Spread population, pop a stretch, then reschedule a block of
        // still-pending slots to the far future: their old candidates
        // must die lazily and the board must keep exact time order
        // throughout — lap refills included.
        let n = 4 * TARGET_FILL;
        let drained = BAGS + 2;
        let mut b = LazyBoard::with_slots(n);
        for s in 0..n {
            b.schedule(s as u32, s as f64);
        }
        for want in 0..drained as u32 {
            assert_eq!(b.pop(), Some((f64::from(want), want)));
        }
        // The storm: every slot in [drained, n/2) jumps to the far
        // future, superseding its indexed candidate.
        for s in drained..n / 2 {
            b.schedule(s as u32, 1000.0 + s as f64);
        }
        assert_eq!(b.stats().overwrites, (n / 2 - drained) as u64);
        let mut last = f64::NEG_INFINITY;
        for _ in 0..n - drained {
            let (t, _) = b.pop().expect("all entries pop");
            assert!(t >= last, "pops stay time-ordered through the storm");
            last = t;
        }
        assert_eq!(b.pop(), None);
        assert!(
            b.stats().stale_pops + b.stats().ring_drops > 0,
            "superseded candidates died lazily"
        );
    }

    #[test]
    fn bucket_overflow_reindexes_to_the_real_time_scale() {
        // Anchor at unit width, then schedule a dense microsecond-gap
        // population: everything folds into one bag until the cap
        // forces a rebuild, after which the geometry matches the real
        // gaps and pops still come out in exact order.
        let n = 2 * BAG_CAP * TARGET_FILL;
        let mut b = LazyBoard::with_slots(n);
        for s in 0..n {
            b.schedule(s as u32, 5.0 + s as f64 * 1e-6);
        }
        for s in 0..n {
            assert_eq!(b.pop(), Some((5.0 + s as f64 * 1e-6, s as u32)));
        }
        assert_eq!(b.pop(), None);
        assert!(b.stats().rebuild_scans >= 1, "the cap must have fired");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_time_rejected() {
        let mut b = LazyBoard::with_slots(2);
        b.schedule(0, f64::INFINITY);
    }

    #[test]
    fn matches_binary_heap_on_a_hold_workload() {
        // The simulation-shaped drive against the heap oracle: random
        // schedules over a 64-slot universe with exact-tie bursts,
        // popped in lockstep. (The trait proptest in
        // tests/lazy_board.rs adds overwrite storms; this hold
        // workload keeps the one-pending-per-slot discipline so the
        // plain heap is directly comparable.)
        let mut board = LazyBoard::with_slots(64);
        let mut heap: EventQueue<u32> = EventQueue::new();
        let mut pending = [false; 64];
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0.0f64;
        for step in 0..50_000 {
            let slot = (rng() % 64) as u32;
            if !pending[slot as usize] {
                let t = now + (rng() % 16) as f64 * 0.25;
                board.schedule(slot, t);
                EventScheduler::schedule(&mut heap, t, slot);
                pending[slot as usize] = true;
            }
            if step % 2 == 0 {
                let a = board.pop();
                let b = EventScheduler::pop(&mut heap);
                assert_eq!(a, b, "divergence at step {step}");
                if let Some((t, s)) = a {
                    now = now.max(t);
                    pending[s as usize] = false;
                }
            }
            assert_eq!(board.len(), EventScheduler::len(&heap));
        }
        loop {
            let a = board.pop();
            let b = EventScheduler::pop(&mut heap);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(board.stats().stale_pops, 0, "no overwrites, no staleness");
        assert!(
            board.stats().ring_inserts > 0,
            "every schedule indexes exactly once"
        );
    }
}
