//! Heterogeneous-speed server state.

use crate::events::Time;

/// One server: a FIFO queue drained at rate `speed` (the bin's
/// "capacity" in the paper's reading), with time-integrated queue-length
/// accounting for steady-state metrics.
#[derive(Debug, Clone)]
pub struct Server {
    speed: u64,
    queue: u64,
    /// Integral of the queue length over time (for time averages).
    queue_time_integral: f64,
    /// Last time the queue length changed.
    last_change: Time,
    /// Largest queue length ever observed.
    max_queue: u64,
    /// Completed jobs.
    completed: u64,
}

impl Server {
    /// Creates an idle server with the given speed.
    ///
    /// # Panics
    /// Panics if `speed == 0`.
    #[must_use]
    pub fn new(speed: u64) -> Self {
        assert!(speed > 0, "server speed must be positive");
        Server {
            speed,
            queue: 0,
            queue_time_integral: 0.0,
            last_change: 0.0,
            max_queue: 0,
            completed: 0,
        }
    }

    /// Service speed (jobs of unit work per unit time).
    #[must_use]
    pub fn speed(&self) -> u64 {
        self.speed
    }

    /// Current queue length (including the job in service).
    #[must_use]
    pub fn queue_len(&self) -> u64 {
        self.queue
    }

    /// The queue length a ball would see *after* joining — the queueing
    /// analog of the paper's post-allocation load, normalised by speed:
    /// `(queue + 1) / speed` compared exactly via `bnb_core::Load`.
    #[must_use]
    pub fn post_join_load(&self) -> bnb_core::Load {
        bnb_core::Load::new(self.queue + 1, self.speed)
    }

    /// Largest queue length observed so far.
    #[must_use]
    pub fn max_queue(&self) -> u64 {
        self.max_queue
    }

    /// Number of completed jobs.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    fn account(&mut self, now: Time) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.queue_time_integral += self.queue as f64 * (now - self.last_change);
        self.last_change = now;
    }

    /// A job joins at time `now`. Returns `true` if the server was idle
    /// (the caller must then schedule the first departure).
    pub fn join(&mut self, now: Time) -> bool {
        self.account(now);
        self.queue += 1;
        self.max_queue = self.max_queue.max(self.queue);
        self.queue == 1
    }

    /// The in-service job completes at time `now`. Returns `true` if
    /// another job is waiting (the caller must schedule its departure).
    ///
    /// # Panics
    /// Panics if the queue is empty.
    pub fn depart(&mut self, now: Time) -> bool {
        assert!(self.queue > 0, "departure from an empty server");
        self.account(now);
        self.queue -= 1;
        self.completed += 1;
        self.queue > 0
    }

    /// Time-averaged queue length up to `now`.
    #[must_use]
    pub fn mean_queue(&self, now: Time) -> f64 {
        if now <= 0.0 {
            return 0.0;
        }
        let integral = self.queue_time_integral + self.queue as f64 * (now - self.last_change);
        integral / now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_depart_bookkeeping() {
        let mut s = Server::new(2);
        assert!(s.join(0.0), "idle server starts service");
        assert!(!s.join(1.0), "busy server queues");
        assert_eq!(s.queue_len(), 2);
        assert_eq!(s.max_queue(), 2);
        assert!(s.depart(2.0), "one job remains");
        assert!(!s.depart(3.0), "now empty");
        assert_eq!(s.completed(), 2);
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn time_average_is_exact_for_step_function() {
        let mut s = Server::new(1);
        s.join(0.0); // q=1 on [0,2)
        s.join(2.0); // q=2 on [2,3)
        s.depart(3.0); // q=1 on [3,4)
        s.depart(4.0); // q=0 on [4,8)
                       // integral = 1*2 + 2*1 + 1*1 + 0*4 = 5; mean over [0,8] = 0.625
        assert!((s.mean_queue(8.0) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn post_join_load_uses_speed() {
        let s_fast = Server::new(10);
        let s_slow = Server::new(1);
        assert!(s_fast.post_join_load() < s_slow.post_join_load());
    }

    #[test]
    #[should_panic(expected = "empty server")]
    fn departure_from_empty_panics() {
        let mut s = Server::new(1);
        s.depart(1.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ = Server::new(0);
    }
}
