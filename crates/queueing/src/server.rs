//! Heterogeneous-speed server state.

use crate::events::Time;

/// Outcome of offering a job to a server through [`Server::try_join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The server was idle; the job starts service immediately (the
    /// caller must schedule its departure).
    StartedService,
    /// The job joined a busy server's queue.
    Queued,
    /// The queue was at capacity; the job was dropped and counted.
    Dropped,
}

/// One server: a FIFO queue drained at rate `speed` (the bin's
/// "capacity" in the paper's reading), with time-integrated queue-length
/// accounting for steady-state metrics.
///
/// The queue is unbounded by default; [`Server::with_queue_capacity`]
/// builds a finite-queue server that rejects (and counts) arrivals once
/// `capacity` jobs are in the system, which is what keeps overloaded
/// (`ρ ≥ 1`) simulations bounded and terminating.
#[derive(Debug, Clone)]
pub struct Server {
    speed: u64,
    queue: u64,
    /// Max jobs in the system (queue + in service); `None` = unbounded.
    capacity: Option<u64>,
    /// Integral of the queue length over time (for time averages).
    queue_time_integral: f64,
    /// Last time the queue length changed.
    last_change: Time,
    /// Largest queue length ever observed.
    max_queue: u64,
    /// Completed jobs.
    completed: u64,
    /// Jobs rejected because the queue was full.
    dropped: u64,
}

impl Server {
    /// Creates an idle server with the given speed and an unbounded queue.
    ///
    /// # Panics
    /// Panics if `speed == 0`.
    #[must_use]
    pub fn new(speed: u64) -> Self {
        Server::build(speed, None)
    }

    /// Creates an idle server that holds at most `capacity` jobs
    /// (including the one in service); arrivals beyond that are dropped.
    ///
    /// # Panics
    /// Panics if `speed == 0` or `capacity == 0`.
    #[must_use]
    pub fn with_queue_capacity(speed: u64, capacity: u64) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Server::build(speed, Some(capacity))
    }

    fn build(speed: u64, capacity: Option<u64>) -> Self {
        assert!(speed > 0, "server speed must be positive");
        Server {
            speed,
            queue: 0,
            capacity,
            queue_time_integral: 0.0,
            last_change: 0.0,
            max_queue: 0,
            completed: 0,
            dropped: 0,
        }
    }

    /// Service speed (jobs of unit work per unit time).
    #[must_use]
    pub fn speed(&self) -> u64 {
        self.speed
    }

    /// Current queue length (including the job in service).
    #[must_use]
    pub fn queue_len(&self) -> u64 {
        self.queue
    }

    /// The queue length a ball would see *after* joining — the queueing
    /// analog of the paper's post-allocation load, normalised by speed:
    /// `(queue + 1) / speed` compared exactly via `bnb_core::Load`.
    #[must_use]
    pub fn post_join_load(&self) -> bnb_core::Load {
        bnb_core::Load::new(self.queue + 1, self.speed)
    }

    /// Largest queue length observed so far.
    #[must_use]
    pub fn max_queue(&self) -> u64 {
        self.max_queue
    }

    /// Number of completed jobs.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Queue capacity (`None` = unbounded).
    #[must_use]
    pub fn queue_capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Jobs rejected because the queue was at capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn account(&mut self, now: Time) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.queue_time_integral += self.queue as f64 * (now - self.last_change);
        self.last_change = now;
    }

    /// A job joins at time `now`, ignoring any queue capacity. Returns
    /// `true` if the server was idle (the caller must then schedule the
    /// first departure). Capacity-respecting callers use
    /// [`Server::try_join`].
    pub fn join(&mut self, now: Time) -> bool {
        self.account(now);
        self.queue += 1;
        self.max_queue = self.max_queue.max(self.queue);
        self.queue == 1
    }

    /// Offers a job at time `now`, respecting the queue capacity: a full
    /// server rejects the job and counts the drop.
    pub fn try_join(&mut self, now: Time) -> Admission {
        if let Some(cap) = self.capacity {
            if self.queue >= cap {
                self.dropped += 1;
                return Admission::Dropped;
            }
        }
        if self.join(now) {
            Admission::StartedService
        } else {
            Admission::Queued
        }
    }

    /// The in-service job completes at time `now`. Returns `true` if
    /// another job is waiting (the caller must schedule its departure).
    ///
    /// # Panics
    /// Panics if the queue is empty.
    pub fn depart(&mut self, now: Time) -> bool {
        assert!(self.queue > 0, "departure from an empty server");
        self.account(now);
        self.queue -= 1;
        self.completed += 1;
        self.queue > 0
    }

    /// Evicts every job in the system at time `now` (queue and the one
    /// in service), returning how many were evicted. Used when a server
    /// leaves a churning cluster: its backlog is orphaned, not completed
    /// — the caller decides how to account for the evicted jobs.
    pub fn evict_all(&mut self, now: Time) -> u64 {
        self.account(now);
        std::mem::take(&mut self.queue)
    }

    /// Time-averaged queue length up to `now`.
    #[must_use]
    pub fn mean_queue(&self, now: Time) -> f64 {
        if now <= 0.0 {
            return 0.0;
        }
        let integral = self.queue_time_integral + self.queue as f64 * (now - self.last_change);
        integral / now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_depart_bookkeeping() {
        let mut s = Server::new(2);
        assert!(s.join(0.0), "idle server starts service");
        assert!(!s.join(1.0), "busy server queues");
        assert_eq!(s.queue_len(), 2);
        assert_eq!(s.max_queue(), 2);
        assert!(s.depart(2.0), "one job remains");
        assert!(!s.depart(3.0), "now empty");
        assert_eq!(s.completed(), 2);
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn time_average_is_exact_for_step_function() {
        let mut s = Server::new(1);
        s.join(0.0); // q=1 on [0,2)
        s.join(2.0); // q=2 on [2,3)
        s.depart(3.0); // q=1 on [3,4)
        s.depart(4.0); // q=0 on [4,8)
                       // integral = 1*2 + 2*1 + 1*1 + 0*4 = 5; mean over [0,8] = 0.625
        assert!((s.mean_queue(8.0) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn post_join_load_uses_speed() {
        let s_fast = Server::new(10);
        let s_slow = Server::new(1);
        assert!(s_fast.post_join_load() < s_slow.post_join_load());
    }

    #[test]
    fn finite_capacity_drops_and_counts() {
        let mut s = Server::with_queue_capacity(1, 2);
        assert_eq!(s.try_join(0.0), Admission::StartedService);
        assert_eq!(s.try_join(1.0), Admission::Queued);
        assert_eq!(s.try_join(2.0), Admission::Dropped);
        assert_eq!(s.try_join(3.0), Admission::Dropped);
        assert_eq!(s.queue_len(), 2, "drops never grow the queue");
        assert_eq!(s.dropped(), 2);
        // A departure frees a slot and admission resumes.
        s.depart(4.0);
        assert_eq!(s.try_join(5.0), Admission::Queued);
        assert_eq!(s.dropped(), 2);
    }

    #[test]
    fn unbounded_server_never_drops() {
        let mut s = Server::new(3);
        assert_eq!(s.queue_capacity(), None);
        for t in 0..100 {
            assert_ne!(s.try_join(t as f64), Admission::Dropped);
        }
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.queue_len(), 100);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Server::with_queue_capacity(1, 0);
    }

    #[test]
    #[should_panic(expected = "empty server")]
    fn departure_from_empty_panics() {
        let mut s = Server::new(1);
        s.depart(1.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ = Server::new(0);
    }
}
