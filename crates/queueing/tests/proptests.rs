//! Property-based tests of the queueing substrate.

use bnb_core::{CapacityVector, Selection};
use bnb_queueing::events::{Event, EventQueue};
use bnb_queueing::{QueueSystem, RoutingPolicy, SystemConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The event queue is a stable priority queue: pops come out in
    /// non-decreasing time order, FIFO among equal times.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0.0f64..1000.0, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, Event::Departure { server: i });
        }
        let mut last_time = f64::NEG_INFINITY;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_seq_time = f64::NEG_INFINITY;
        while let Some((t, e)) = q.pop() {
            prop_assert!(t >= last_time, "time went backwards");
            if (t - last_seq_time).abs() < f64::EPSILON {
                // FIFO among ties: indices increase.
                if let Event::Departure { server } = e {
                    if let Some(&prev) = seen_at_time.last() {
                        prop_assert!(server > prev, "tie order violated");
                    }
                    seen_at_time.push(server);
                }
            } else {
                seen_at_time.clear();
                if let Event::Departure { server } = e {
                    seen_at_time.push(server);
                }
                last_seq_time = t;
            }
            last_time = t;
        }
    }

    /// Whatever the speeds, utilisation and policy, every arrival is
    /// eventually served and the metrics are finite and consistent.
    #[test]
    fn all_arrivals_complete(
        speeds in prop::collection::vec(1u64..8, 1..12),
        rho_pct in 10u32..95,
        d in 1usize..4,
        policy_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let routing = [
            RoutingPolicy::ShortestNormalizedQueue,
            RoutingPolicy::ShortestQueue,
            RoutingPolicy::Random,
        ][policy_idx];
        let speeds = CapacityVector::from_vec(speeds);
        let config = SystemConfig {
            d: d.min(speeds.n()).max(1),
            routing,
            selection: Selection::ProportionalToCapacity,
            rho: rho_pct as f64 / 100.0,
            queue_capacity: None,
        };
        let mut sys = QueueSystem::new(&speeds, config, seed);
        let arrivals = 500u64;
        let metrics = sys.run_arrivals(arrivals);
        prop_assert_eq!(metrics.completed, arrivals);
        prop_assert!(metrics.horizon.is_finite() && metrics.horizon > 0.0);
        prop_assert!(metrics.mean_queue_len >= 0.0);
        prop_assert!(metrics.max_queue_len >= 1);
        // Per-server queues are empty after a full drain.
        prop_assert!(sys.servers().iter().all(|s| s.queue_len() == 0));
    }
}
