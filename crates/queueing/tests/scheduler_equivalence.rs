//! Property tests of the [`EventScheduler`] determinism contract: the
//! binary-heap [`EventQueue`] and the timing-wheel [`CalendarQueue`]
//! must emit **identical** `(time, payload)` sequences under arbitrary
//! interleaved schedules — including tie storms (many events at the
//! exact same instant, which must pop FIFO) and far-future events that
//! ride the calendar's overflow ladder across window advances.

use bnb_queueing::{CalendarQueue, EventQueue, EventScheduler};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// One step of a scheduler drive.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event at this absolute time.
    Schedule(f64),
    /// Pop up to this many events.
    Pop(usize),
}

/// A time strategy mixing the regimes that stress a calendar queue:
/// ordinary scatter, exact ties from a tiny value set, and far futures
/// (1e9..1e12) that must overflow any reasonable wheel window.
fn time_strategy() -> impl Strategy<Value = f64> {
    // The vendored proptest shim picks uniformly among the arms, so
    // weights are expressed by repeating arms.
    prop_oneof![
        0.0f64..1_000.0,
        0.0f64..1_000.0,
        0.0f64..1_000.0,
        prop_oneof![Just(0.0f64), Just(1.0), Just(2.5), Just(64.0)],
        prop_oneof![Just(1.0f64), Just(2.5)], // extra tie mass
        1e9f64..1e12,
        -100.0f64..0.0, // before the anchor: forces re-anchoring
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        time_strategy().prop_map(Op::Schedule),
        time_strategy().prop_map(Op::Schedule),
        time_strategy().prop_map(Op::Schedule),
        (0usize..4).prop_map(Op::Pop),
        (0usize..4).prop_map(Op::Pop),
    ]
}

/// Drives both schedulers through the same op sequence, comparing every
/// popped `(time, payload)` pair (times compared bitwise) and the
/// reported lengths at each step; then drains both and compares tails.
fn assert_equivalent(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut heap: EventQueue<usize> = EventScheduler::new();
    let mut cal: CalendarQueue<usize> = EventScheduler::new();
    let mut payload = 0usize;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Schedule(t) => {
                heap.schedule(t, payload);
                EventScheduler::schedule(&mut cal, t, payload);
                payload += 1;
            }
            Op::Pop(k) => {
                for _ in 0..k {
                    let a = EventQueue::pop(&mut heap);
                    let b = EventScheduler::pop(&mut cal);
                    match (a, b) {
                        (Some((ta, ea)), Some((tb, eb))) => {
                            prop_assert_eq!(
                                ta.to_bits(),
                                tb.to_bits(),
                                "time divergence at step {}: heap {} vs calendar {}",
                                step,
                                ta,
                                tb
                            );
                            prop_assert_eq!(ea, eb, "payload divergence at step {}", step);
                        }
                        (None, None) => {}
                        (a, b) => {
                            return Err(TestCaseError::fail(format!(
                                "presence divergence at step {step}: heap {a:?} vs calendar {b:?}"
                            )));
                        }
                    }
                }
            }
        }
        prop_assert_eq!(EventQueue::len(&heap), EventScheduler::len(&cal));
        prop_assert_eq!(heap.peek().map(f64::to_bits), cal.peek().map(f64::to_bits));
    }
    loop {
        let a = EventQueue::pop(&mut heap);
        let b = EventScheduler::pop(&mut cal);
        prop_assert_eq!(
            a.map(|(t, e)| (t.to_bits(), e)),
            b.map(|(t, e)| (t.to_bits(), e)),
            "drain divergence"
        );
        if a.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleaved schedules: identical pop streams.
    #[test]
    fn heap_and_calendar_emit_identical_sequences(
        ops in prop::collection::vec(op_strategy(), 1..400)
    ) {
        assert_equivalent(&ops)?;
    }

    /// Pure tie storm: every event at one of two instants, scheduled in
    /// bursts — FIFO order must survive the calendar's bucket scans and
    /// geometry rebuilds.
    #[test]
    fn tie_storms_pop_fifo(
        burst_sizes in prop::collection::vec(1usize..64, 1..20),
        pop_between in prop::collection::vec(0usize..32, 1..20),
    ) {
        let mut ops = Vec::new();
        for (i, (&b, &p)) in burst_sizes.iter().zip(&pop_between).enumerate() {
            let t = if i % 2 == 0 { 5.0 } else { 7.0 };
            ops.extend(std::iter::repeat_n(Op::Schedule(t), b));
            ops.push(Op::Pop(p));
        }
        assert_equivalent(&ops)?;
    }

    /// Simulation-shaped drive with a monotone clock plus ladder events:
    /// schedule near-future work, pop one, repeat — the common case the
    /// calendar optimises must stay exact, window advance included.
    #[test]
    fn monotone_clock_with_ladder_events(
        gaps in prop::collection::vec(0.0f64..10.0, 10..300),
        ladder_every in 5usize..40,
    ) {
        let mut ops = Vec::new();
        let mut now = 0.0;
        for (i, &g) in gaps.iter().enumerate() {
            ops.push(Op::Schedule(now + g));
            if i % ladder_every == 0 {
                ops.push(Op::Schedule(now + 1e10));
            }
            ops.push(Op::Pop(1));
            now += g * 0.5;
        }
        ops.push(Op::Pop(10_000));
        assert_equivalent(&ops)?;
    }
}
