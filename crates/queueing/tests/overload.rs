//! Overload behaviour of `queueing::system`: with arrival rate above the
//! total service rate (ρ > 1) and finite queues, the system must stay
//! bounded, count every rejected job, and terminate (satellite of the
//! cluster-simulator issue).

use bnb_core::{CapacityVector, Selection};
use bnb_queueing::{QueueMetrics, QueueSystem, RoutingPolicy, SystemConfig};

const CAP: u64 = 16;

fn overloaded(speeds: &CapacityVector, rho: f64, seed: u64, arrivals: u64) -> QueueMetrics {
    let config = SystemConfig {
        rho,
        queue_capacity: Some(CAP),
        ..SystemConfig::default()
    };
    let mut sys = QueueSystem::new(speeds, config, seed);
    sys.run_arrivals(arrivals)
}

#[test]
fn queues_stay_bounded_by_capacity() {
    let speeds = CapacityVector::two_class(10, 1, 10, 8);
    let config = SystemConfig {
        rho: 2.0,
        queue_capacity: Some(CAP),
        ..SystemConfig::default()
    };
    let mut sys = QueueSystem::new(&speeds, config, 11);
    let m = sys.run_arrivals(50_000);
    // The peak queue over the whole run never exceeds the bound, on any
    // server — not just at the end.
    assert!(
        m.max_queue_len <= CAP,
        "max queue {} exceeded capacity {CAP}",
        m.max_queue_len
    );
    for (i, s) in sys.servers().iter().enumerate() {
        assert!(
            s.max_queue() <= CAP,
            "server {i} peaked at {} > {CAP}",
            s.max_queue()
        );
    }
}

#[test]
fn drops_are_counted_and_conserve_jobs() {
    let speeds = CapacityVector::uniform(8, 2);
    let arrivals = 30_000;
    let m = overloaded(&speeds, 3.0, 7, arrivals);
    // At triple the service rate roughly two thirds of the offered jobs
    // must be rejected; at minimum, drops are plentiful and accounted.
    assert!(m.dropped > 0, "an overloaded system must drop jobs");
    assert_eq!(
        m.completed + m.dropped,
        arrivals,
        "every arrival either completes or is dropped once the run drains"
    );
    assert!(
        m.dropped as f64 > 0.4 * arrivals as f64,
        "ρ=3 should shed well over 40% of jobs, dropped {}",
        m.dropped
    );
}

#[test]
fn event_loop_terminates_at_extreme_overload() {
    // ρ = 20 with one slow server: termination is the assertion — the
    // run_arrivals call must come back with finite, consistent metrics.
    let speeds = CapacityVector::uniform(1, 1);
    let arrivals = 5_000;
    let m = overloaded(&speeds, 20.0, 3, arrivals);
    assert!(m.horizon.is_finite() && m.horizon > 0.0);
    assert_eq!(m.completed + m.dropped, arrivals);
    assert!(m.mean_queue_len <= CAP as f64);
}

#[test]
fn all_routing_policies_survive_overload() {
    let speeds = CapacityVector::two_class(4, 1, 4, 4);
    for routing in [
        RoutingPolicy::ShortestNormalizedQueue,
        RoutingPolicy::ShortestQueue,
        RoutingPolicy::Random,
    ] {
        let config = SystemConfig {
            rho: 1.5,
            routing,
            selection: Selection::ProportionalToCapacity,
            queue_capacity: Some(CAP),
            ..SystemConfig::default()
        };
        let mut sys = QueueSystem::new(&speeds, config, 19);
        let arrivals = 20_000;
        let m = sys.run_arrivals(arrivals);
        assert!(m.max_queue_len <= CAP, "{routing:?}");
        assert_eq!(m.completed + m.dropped, arrivals, "{routing:?}");
        assert!(m.dropped > 0, "{routing:?} shed no load at ρ=1.5");
    }
}

#[test]
fn load_aware_routing_sheds_less_than_random_under_overload() {
    // Mild overload: JSQ-style routing balances the fleet and finds free
    // slots that random routing wastes, so it should drop fewer jobs.
    let speeds = CapacityVector::two_class(20, 1, 20, 8);
    let run = |routing: RoutingPolicy| {
        let config = SystemConfig {
            rho: 1.2,
            routing,
            queue_capacity: Some(4),
            ..SystemConfig::default()
        };
        let mut sys = QueueSystem::new(&speeds, config, 23);
        sys.run_arrivals(60_000).dropped
    };
    let smart = run(RoutingPolicy::ShortestNormalizedQueue);
    let random = run(RoutingPolicy::Random);
    assert!(
        smart < random,
        "normalised JSQ dropped {smart}, random dropped {random}"
    );
}

#[test]
fn stable_system_with_finite_queues_rarely_drops() {
    // Sanity in the other direction: ρ = 0.5 with a deep finite queue
    // behaves like the unbounded system (and the zero-drop metric shows
    // the accounting is not spuriously firing).
    let speeds = CapacityVector::uniform(10, 2);
    let m = overloaded(&speeds, 0.5, 5, 20_000);
    assert_eq!(m.dropped, 0, "ρ=0.5 with capacity 16 should not drop");
    assert_eq!(m.completed, 20_000);
}

#[test]
#[should_panic(expected = "stability")]
fn unbounded_overload_still_rejected() {
    let speeds = CapacityVector::uniform(2, 1);
    let _ = QueueSystem::new(
        &speeds,
        SystemConfig {
            rho: 1.5,
            ..Default::default()
        },
        0,
    );
}
