//! Property tests of the [`LazyBoard`] against an independent
//! lazy-deletion binary-heap oracle.
//!
//! The board's three claims — O(1) overwrite schedules, a
//! stale-tolerant candidate ring, full-scan refills — must jointly
//! behave as one stable *slot-keyed* priority queue: at most one live
//! entry per slot, superseded in place by reschedules, popped in
//! `(time, insertion sequence)` order. The oracle here is deliberately
//! *not* the crate's own `EventQueue`: it is a plain
//! `std::collections::BinaryHeap` over `(time, seq, slot)` plus an
//! authoritative per-slot sequence table, validating entries on pop
//! exactly as the textbook lazy-deletion heap does — so these tests
//! cannot share a bug with any scheduler implementation in the crate.
//!
//! Both sides assign sequence numbers in the same schedule order, and
//! the oracle pops only entries whose sequence is still the slot's
//! authoritative one — so asserting bitwise-equal `(time, slot)` pop
//! streams pins the full `(time, seq)` determinism contract. The op
//! mix drives the regimes the issue names: **overwrite storms**
//! (reschedule one slot repeatedly, exact same-time overwrites
//! included), **tie storms** (many slots at one instant), and
//! `pop_if_before` **window edges** (`bound == time` must not pop).

use bnb_queueing::LazyBoard;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Slot universe of every drive (the board also grows on demand; a
/// fixed universe keeps overwrites frequent).
const SLOTS: usize = 48;

/// Sequence value of an idle slot in the oracle's authoritative table.
const IDLE: u64 = u64::MAX;

/// A `(time, seq)` key ordered time-ascending then seq-ascending.
/// Times are finite by construction, so `total_cmp` agrees with the
/// scheduler's comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64, u64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// The textbook lazy-deletion heap: every schedule pushes, overwrites
/// only bump the slot's authoritative sequence, and pop discards heap
/// entries whose sequence is no longer authoritative.
struct Oracle {
    heap: BinaryHeap<Reverse<(Key, u32)>>,
    current: Vec<u64>,
    next_seq: u64,
    len: usize,
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            heap: BinaryHeap::new(),
            current: vec![IDLE; SLOTS],
            next_seq: 0,
            len: 0,
        }
    }

    fn schedule(&mut self, slot: u32, time: f64) {
        if self.current[slot as usize] == IDLE {
            self.len += 1;
        }
        self.current[slot as usize] = self.next_seq;
        self.heap.push(Reverse((Key(time, self.next_seq), slot)));
        self.next_seq += 1;
    }

    /// Discards stale heap tops so `peek`/`pop_if_before` see the live
    /// minimum (discarding is permanent and safe: a stale entry can
    /// never become live again).
    fn settle(&mut self) {
        while let Some(Reverse((Key(_, seq), slot))) = self.heap.peek() {
            if self.current[*slot as usize] == *seq {
                break;
            }
            self.heap.pop();
        }
    }

    fn pop(&mut self) -> Option<(f64, u32)> {
        self.settle();
        let Reverse((Key(t, _), slot)) = self.heap.pop()?;
        self.current[slot as usize] = IDLE;
        self.len -= 1;
        Some((t, slot))
    }

    fn pop_if_before(&mut self, bound: f64) -> Option<(f64, u32)> {
        self.settle();
        if self
            .heap
            .peek()
            .is_some_and(|Reverse((Key(t, _), _))| *t < bound)
        {
            self.pop()
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<f64> {
        self.settle();
        self.heap.peek().map(|Reverse((Key(t, _), _))| *t)
    }
}

/// One step of a board drive.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule (or overwrite) one slot at this absolute time.
    Schedule(u32, f64),
    /// Reschedule the *same* slot `count` times across a narrow band —
    /// `width == 0` degenerates to exact same-time overwrites.
    OverwriteStorm {
        slot: u32,
        base: f64,
        width: f64,
        count: usize,
    },
    /// Schedule a run of distinct slots at one exact instant.
    TieStorm { first: u32, time: f64, count: usize },
    /// Pop up to this many entries unconditionally.
    Pop(usize),
    /// Pop entries strictly before `last_pop + delta`, up to `max` —
    /// `delta` frequently lands the bound exactly on a scheduled time.
    PopBefore { delta: f64, max: usize },
}

/// Times biased toward the board's regimes: near-term scatter (ring
/// inserts and overflow drops), a tiny tie-prone value set, far
/// futures (beyond the ring horizon: two stores, no index), and
/// pre-anchor negatives.
fn time_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0f64..50.0,
        0.0f64..50.0,
        0.0f64..50.0,
        prop_oneof![Just(3.0f64), Just(8.0), Just(8.0), Just(21.5)],
        50.0f64..2_000.0,
        1e9f64..1e12,
        -50.0f64..0.0,
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let slot = 0u32..SLOTS as u32;
    prop_oneof![
        (slot.clone(), time_strategy()).prop_map(|(s, t)| Op::Schedule(s, t)),
        (slot.clone(), time_strategy()).prop_map(|(s, t)| Op::Schedule(s, t)),
        (slot.clone(), time_strategy()).prop_map(|(s, t)| Op::Schedule(s, t)),
        (slot.clone(), 0.0f64..100.0, 0.0f64..2.0, 1usize..24).prop_map(
            |(slot, base, width, count)| Op::OverwriteStorm {
                slot,
                base,
                width,
                count
            }
        ),
        (slot.clone(), 0.0f64..100.0, 1usize..24).prop_map(|(slot, base, count)| {
            Op::OverwriteStorm {
                slot,
                base,
                width: 0.0,
                count,
            }
        }),
        (slot, 0.0f64..60.0, 1usize..24).prop_map(|(first, time, count)| Op::TieStorm {
            first,
            time,
            count
        }),
        (0usize..6).prop_map(Op::Pop),
        (0usize..6).prop_map(Op::Pop),
        (0.0f64..30.0, 1usize..8).prop_map(|(delta, max)| Op::PopBefore { delta, max }),
        (0.0f64..30.0, 1usize..8).prop_map(|(delta, max)| Op::PopBefore { delta, max }),
    ]
}

fn check_pop(
    step: usize,
    a: Option<(f64, u32)>,
    b: Option<(f64, u32)>,
) -> Result<bool, TestCaseError> {
    match (a, b) {
        (Some((ta, sa)), Some((tb, sb))) => {
            prop_assert_eq!(
                ta.to_bits(),
                tb.to_bits(),
                "time divergence at step {}: oracle {} vs board {}",
                step,
                ta,
                tb
            );
            prop_assert_eq!(sa, sb, "slot divergence at step {} (time {})", step, ta);
            Ok(true)
        }
        (None, None) => Ok(false),
        (a, b) => Err(TestCaseError::fail(format!(
            "presence divergence at step {step}: oracle {a:?} vs board {b:?}"
        ))),
    }
}

/// Drives the board and the oracle through one op sequence, asserting
/// identical `(time, slot)` pop streams, identical peeks and live
/// counts after every op, and an identical drain tail.
fn assert_matches_oracle(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut board = LazyBoard::with_slots(SLOTS);
    let mut oracle = Oracle::new();
    let mut last_pop = 0.0f64;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Schedule(slot, t) => {
                board.schedule(slot, t);
                oracle.schedule(slot, t);
            }
            Op::OverwriteStorm {
                slot,
                base,
                width,
                count,
            } => {
                for i in 0..count {
                    let frac = f64::from((i as u32).wrapping_mul(2_654_435_769) >> 16) / 65_536.0;
                    let t = last_pop + base + width * frac;
                    board.schedule(slot, t);
                    oracle.schedule(slot, t);
                }
            }
            Op::TieStorm { first, time, count } => {
                for i in 0..count {
                    let slot = (first + i as u32) % SLOTS as u32;
                    let t = last_pop + time;
                    board.schedule(slot, t);
                    oracle.schedule(slot, t);
                }
            }
            Op::Pop(k) => {
                for _ in 0..k {
                    let got = check_pop(step, oracle.pop(), board.pop())?;
                    if let Some(t) = oracle.peek() {
                        last_pop = last_pop.max(t);
                    }
                    if !got {
                        break;
                    }
                }
            }
            Op::PopBefore { delta, max } => {
                let bound = last_pop + delta;
                for _ in 0..max {
                    let got = check_pop(
                        step,
                        oracle.pop_if_before(bound),
                        board.pop_if_before(bound),
                    )?;
                    if !got {
                        break;
                    }
                    last_pop = bound.min(last_pop.max(oracle.peek().unwrap_or(last_pop)));
                }
            }
        }
        prop_assert_eq!(oracle.len, board.len(), "live count at step {}", step);
        prop_assert_eq!(
            oracle.peek().map(f64::to_bits),
            board.peek().map(f64::to_bits),
            "peek at step {}",
            step
        );
    }
    loop {
        let a = oracle.pop();
        if !check_pop(usize::MAX, a, board.pop())? {
            break;
        }
        let _ = a;
    }
    prop_assert_eq!(board.len(), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of schedules, overwrite storms, tie
    /// storms and both pop flavours: the board emits the lazy-deletion
    /// heap oracle's exact `(time, slot)` stream.
    #[test]
    fn lazy_board_matches_lazy_heap_oracle(
        ops in prop::collection::vec(op_strategy(), 1..300)
    ) {
        assert_matches_oracle(&ops)?;
    }

    /// Sustained overwrite storms with no relief: one hot slot is
    /// rescheduled over and over (stale candidates pile into the ring
    /// and overflow it) while bounded pops collect the survivors.
    #[test]
    fn sustained_overwrite_storms_stay_exact(
        bursts in prop::collection::vec((0u32..SLOTS as u32, 0.0f64..10.0, 4usize..24), 2..16),
        drain_between in prop::collection::vec(0usize..8, 2..16),
    ) {
        let mut ops = Vec::new();
        for (&(slot, base, count), &p) in bursts.iter().zip(&drain_between) {
            ops.push(Op::OverwriteStorm { slot, base, width: 0.25, count });
            ops.push(Op::TieStorm { first: slot, time: base, count: 6 });
            ops.push(Op::Pop(p));
        }
        ops.push(Op::Pop(10_000));
        assert_matches_oracle(&ops)?;
    }

    /// Entries pinned to the window edge: a monotone clock pops with
    /// `pop_if_before` at exactly the times entries sit on, so the
    /// strictly-before contract is tested where `bound == time` — with
    /// the entry freshly scheduled, overwritten to the same instant,
    /// and tied across slots.
    #[test]
    fn window_edge_bounds_are_strictly_before(
        edges in prop::collection::vec(0.25f64..16.0, 4..40),
        dup in prop::collection::vec(1usize..4, 4..40),
    ) {
        let mut ops = Vec::new();
        let mut t = 0.0;
        for (i, (&gap, &k)) in edges.iter().zip(&dup).enumerate() {
            t += gap;
            let slot = (i % SLOTS) as u32;
            for _ in 0..=k {
                // Same slot, same instant, repeatedly: an exact-time
                // overwrite storm sitting right on the window edge.
                ops.push(Op::Schedule(slot, t));
            }
            ops.push(Op::Schedule((slot + 7) % SLOTS as u32, t));
            ops.push(Op::PopBefore { delta: t, max: 2 });
        }
        ops.push(Op::Pop(10_000));
        assert_matches_oracle(&ops)?;
    }
}
