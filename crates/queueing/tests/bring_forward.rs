//! Property tests of the calendar's bring-forward machinery against an
//! independent binary-heap oracle.
//!
//! The [`CalendarQueue`] keeps three stores that must jointly behave as
//! one stable priority queue: the sorted bring-forward **ring** (the
//! next few upcoming events, popped O(1)), the timing **wheel**, and
//! the bulk-commit **pending** buffer (far-horizon schedules parked as
//! raw `(time, seq)` pairs until the next ring refill drains them).
//! Events migrate between all three — ring inserts spill to pending
//! when the ring is full, refills pull from wheel and pending, rebuilds
//! re-home everything — and any migration bug shows up as a reordered
//! or dropped pop.
//!
//! The oracle here is deliberately *not* the crate's own `EventQueue`:
//! it is a plain `std::collections::BinaryHeap` over `(time, seq)`
//! with FIFO tie order, so these tests cannot share a bug with any
//! scheduler implementation in the crate. Every popped pair is compared
//! bitwise on time and exactly on sequence number.

use bnb_queueing::{CalendarQueue, EventScheduler};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A `(time, seq)` key ordered time-ascending then seq-ascending, so
/// `BinaryHeap<Reverse<Key>>` pops the earliest event FIFO among ties.
/// Times are finite by construction (the strategies never emit NaN),
/// so `total_cmp` agrees with the scheduler's `<` comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64, u64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Insertion-ordered heap oracle: a minimal stable priority queue.
#[derive(Default)]
struct Oracle {
    heap: BinaryHeap<Reverse<Key>>,
    next_seq: u64,
}

impl Oracle {
    fn schedule(&mut self, time: f64) {
        self.heap.push(Reverse(Key(time, self.next_seq)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(f64, u64)> {
        self.heap.pop().map(|Reverse(Key(t, s))| (t, s))
    }

    fn pop_if_before(&mut self, bound: f64) -> Option<(f64, u64)> {
        if self
            .heap
            .peek()
            .is_some_and(|Reverse(Key(t, _))| *t < bound)
        {
            self.pop()
        } else {
            None
        }
    }

    fn peek(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse(Key(t, _))| *t)
    }
}

/// One step of a scheduler drive.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event at this absolute time.
    Schedule(f64),
    /// Schedule a burst of events inside a narrow band just ahead of
    /// the last pop — the shape that fills the ring and forces spills
    /// into the pending buffer.
    SpillStorm { base: f64, width: f64, count: usize },
    /// Pop up to this many events unconditionally.
    Pop(usize),
    /// Pop events strictly before `last_pop + delta`, up to `max`.
    PopBefore { delta: f64, max: usize },
}

/// Times biased towards the regimes the ring + pending buffer see:
/// dense near-term scatter (ring inserts and spills), exact ties from a
/// tiny value set (tie storms across all three stores), far futures
/// (overflow ladder / pending), and pre-anchor times (re-anchoring
/// while ring and pending are populated).
fn time_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0f64..50.0,
        0.0f64..50.0,
        0.0f64..50.0,
        prop_oneof![Just(3.0f64), Just(8.0), Just(8.0), Just(21.5)],
        50.0f64..2_000.0,
        1e9f64..1e12,
        -50.0f64..0.0,
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        time_strategy().prop_map(Op::Schedule),
        time_strategy().prop_map(Op::Schedule),
        time_strategy().prop_map(Op::Schedule),
        (0.0f64..100.0, 0.0f64..4.0, 1usize..48)
            .prop_map(|(base, width, count)| { Op::SpillStorm { base, width, count } }),
        (0usize..6).prop_map(Op::Pop),
        (0usize..6).prop_map(Op::Pop),
        (0.0f64..30.0, 1usize..8).prop_map(|(delta, max)| Op::PopBefore { delta, max }),
        (0.0f64..30.0, 1usize..8).prop_map(|(delta, max)| Op::PopBefore { delta, max }),
    ]
}

fn check_pop(
    step: usize,
    a: Option<(f64, u64)>,
    b: Option<(f64, u64)>,
) -> Result<bool, TestCaseError> {
    match (a, b) {
        (Some((ta, sa)), Some((tb, sb))) => {
            prop_assert_eq!(
                ta.to_bits(),
                tb.to_bits(),
                "time divergence at step {}: oracle {} vs calendar {}",
                step,
                ta,
                tb
            );
            prop_assert_eq!(sa, sb, "seq divergence at step {} (time {})", step, ta);
            Ok(true)
        }
        (None, None) => Ok(false),
        (a, b) => Err(TestCaseError::fail(format!(
            "presence divergence at step {step}: oracle {a:?} vs calendar {b:?}"
        ))),
    }
}

/// Drives the calendar and the heap oracle through one op sequence,
/// asserting identical `(time, seq)` pop streams, identical peeks and
/// lengths after every op, and an identical drain tail.
fn assert_matches_oracle(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut cal: CalendarQueue<u64> = EventScheduler::new();
    let mut oracle = Oracle::default();
    let mut seq = 0u64;
    let mut last_pop = 0.0f64;
    let mut schedule = |cal: &mut CalendarQueue<u64>, oracle: &mut Oracle, t: f64| {
        cal.schedule(t, seq);
        oracle.schedule(t);
        seq += 1;
    };
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Schedule(t) => schedule(&mut cal, &mut oracle, t),
            Op::SpillStorm { base, width, count } => {
                // Deterministic low-discrepancy scatter inside the band:
                // enough distinct times to exercise the ring's sorted
                // insert, enough coincidences to exercise tie order.
                for i in 0..count {
                    let frac = f64::from((i as u32).wrapping_mul(2_654_435_769) >> 16) / 65_536.0;
                    schedule(&mut cal, &mut oracle, last_pop + base + width * frac);
                }
            }
            Op::Pop(k) => {
                for _ in 0..k {
                    let got = check_pop(step, oracle.pop(), EventScheduler::pop(&mut cal))?;
                    if let Some(t) = oracle.peek() {
                        last_pop = last_pop.max(t);
                    }
                    if !got {
                        break;
                    }
                }
            }
            Op::PopBefore { delta, max } => {
                let bound = last_pop + delta;
                for _ in 0..max {
                    let got =
                        check_pop(step, oracle.pop_if_before(bound), cal.pop_if_before(bound))?;
                    if !got {
                        break;
                    }
                    last_pop = bound.min(last_pop.max(oracle.peek().unwrap_or(last_pop)));
                }
            }
        }
        prop_assert_eq!(
            oracle.heap.len(),
            EventScheduler::len(&cal),
            "len at step {}",
            step
        );
        prop_assert_eq!(
            oracle.peek().map(f64::to_bits),
            cal.peek().map(f64::to_bits),
            "peek at step {}",
            step
        );
    }
    loop {
        let a = oracle.pop();
        if !check_pop(usize::MAX, a, EventScheduler::pop(&mut cal))? {
            break;
        }
        let _ = a;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of scatter, spill storms and both pop
    /// flavours: the calendar's three stores jointly emit the oracle's
    /// exact `(time, seq)` stream.
    #[test]
    fn ring_wheel_and_pending_match_heap_oracle(
        ops in prop::collection::vec(op_strategy(), 1..300)
    ) {
        assert_matches_oracle(&ops)?;
    }

    /// Repeated spill storms with no relief: every burst overfills the
    /// ring, spilling the tail into the pending buffer, and interleaved
    /// bounded pops force refills that drain pending mid-storm.
    #[test]
    fn sustained_spill_storms_stay_exact(
        bursts in prop::collection::vec((0.0f64..10.0, 8usize..48), 2..16),
        drain_between in prop::collection::vec(0usize..12, 2..16),
    ) {
        let mut ops = Vec::new();
        for (&(base, count), &p) in bursts.iter().zip(&drain_between) {
            ops.push(Op::SpillStorm { base, width: 0.5, count });
            ops.push(Op::Pop(p));
        }
        ops.push(Op::Pop(10_000));
        assert_matches_oracle(&ops)?;
    }

    /// Events pinned to the bucket-window edge: a monotone clock pops
    /// with `pop_if_before` at exactly the times events sit on, so the
    /// strictly-before contract is tested where `bound == time` — once
    /// with the event in the ring, once parked in pending, once on the
    /// wheel.
    #[test]
    fn window_edge_bounds_are_strictly_before(
        edges in prop::collection::vec(0.25f64..16.0, 4..40),
        dup in prop::collection::vec(1usize..4, 4..40),
    ) {
        let mut ops = Vec::new();
        let mut t = 0.0;
        for (&gap, &k) in edges.iter().zip(&dup) {
            t += gap;
            for _ in 0..k {
                ops.push(Op::Schedule(t));
            }
            // `last_pop` trails `t`, so `delta` chosen as the running
            // time puts the bound on or near the scheduled instant.
            ops.push(Op::PopBefore { delta: t, max: 2 });
        }
        ops.push(Op::Pop(10_000));
        assert_matches_oracle(&ops)?;
    }
}
