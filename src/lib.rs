//! # balls-into-bins
//!
//! Facade crate for the reproduction of *Balls into non-uniform bins*
//! (Berenbrink, Brinkmann, Friedetzky, Nagel; IPDPS 2010 / JPDC 2014).
//!
//! Re-exports the workspace crates under stable names:
//!
//! * [`core`] — the model: capacities, exact loads, Algorithm 1 and the
//!   baseline policies, the simulation engine, slot vectors,
//!   majorisation, growth models, theory bounds.
//! * [`distributions`] — PRNGs and weighted samplers (alias, Fenwick,
//!   cumulative) plus binomial/geometric/Zipf variates.
//! * [`hashring`] — the consistent-hashing substrate: rings, arcs, the
//!   Byers et al. d-point game, Chord finger tables.
//! * [`stats`] — summaries, histograms, series, chi-square, CSV/tables.
//! * [`experiments`] — runners for all 18 paper figures and the `repro`
//!   CLI.
//!
//! ## Quick start
//!
//! ```
//! use balls_into_bins::core::prelude::*;
//!
//! // 100 bins, half capacity 1 and half capacity 10; m = C balls;
//! // d = 2 choices proportional to capacity; Algorithm 1 allocation.
//! let caps = CapacityVector::two_class(50, 1, 50, 10);
//! let bins = run_game(&caps, caps.total(), &GameConfig::default(), 42);
//! assert_eq!(bins.total_balls(), caps.total());
//! assert!(bins.max_load().as_f64() < 4.0); // ln ln n / ln 2 + O(1)
//! ```

#![deny(missing_docs)]

pub use bnb_analysis as analysis;
pub use bnb_core as core;
pub use bnb_distributions as distributions;
pub use bnb_experiments as experiments;
pub use bnb_hashring as hashring;
pub use bnb_queueing as queueing;
pub use bnb_stats as stats;
