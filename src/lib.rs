//! # balls-into-bins
//!
//! Facade crate for the reproduction of *Balls into non-uniform bins*
//! (Berenbrink, Brinkmann, Friedetzky, Nagel; IPDPS 2010 / JPDC 2014).
//!
//! Re-exports the workspace crates under stable names:
//!
//! * [`core`] — the model: capacities, exact loads, Algorithm 1 and the
//!   baseline policies, the simulation engine, slot vectors,
//!   majorisation, growth models, theory bounds.
//! * [`distributions`] — PRNGs and weighted samplers (alias, Fenwick,
//!   cumulative) plus binomial/geometric/Zipf variates.
//! * [`hashring`] — the consistent-hashing substrate: rings, arcs, the
//!   Byers et al. d-point game, Chord finger tables.
//! * [`queueing`] — the discrete-event queueing substrate: JSQ(d) over
//!   heterogeneous-speed servers, finite queues, drop accounting.
//! * [`router`] — the embeddable placement data plane: the four
//!   policies behind one [`Router`](bnb_router::Router) trait, with
//!   lock-free epoch-published fleet views for concurrent embedders.
//! * [`cluster`] — the heterogeneous-cluster simulator: paper-faithful
//!   traffic served end to end through `bnb-router` placement, with
//!   churn; serial and space-sharded parallel engines behind one
//!   [`SimBuilder`](bnb_cluster::SimBuilder); drives the `cluster-sim`
//!   CLI.
//! * [`stats`] — summaries, histograms, series, chi-square, CSV/tables.
//! * [`telemetry`] — zero-overhead-when-off counters, log₂ histograms,
//!   sampled spans, chrome://tracing and Prometheus export.
//! * [`experiments`] — runners for all 18 paper figures and the `repro`
//!   CLI.
//!
//! The [`prelude`] pulls the entry points of all of them into one
//! namespace.
//!
//! ## Quick start
//!
//! ```
//! use balls_into_bins::core::prelude::*;
//!
//! // 100 bins, half capacity 1 and half capacity 10; m = C balls;
//! // d = 2 choices proportional to capacity; Algorithm 1 allocation.
//! let caps = CapacityVector::two_class(50, 1, 50, 10);
//! let bins = run_game(&caps, caps.total(), &GameConfig::default(), 42);
//! assert_eq!(bins.total_balls(), caps.total());
//! assert!(bins.max_load().as_f64() < 4.0); // ln ln n / ln 2 + O(1)
//! ```

#![deny(missing_docs)]

pub use bnb_analysis as analysis;
pub use bnb_cluster as cluster;
pub use bnb_core as core;
pub use bnb_distributions as distributions;
pub use bnb_experiments as experiments;
pub use bnb_hashring as hashring;
pub use bnb_queueing as queueing;
pub use bnb_router as router;
pub use bnb_stats as stats;
pub use bnb_telemetry as telemetry;

/// One-stop namespace over the whole workspace: the core model's
/// prelude plus the queueing, hash-ring and cluster entry points, which
/// the per-crate facades alone leave invisible.
///
/// ```
/// use balls_into_bins::prelude::*;
///
/// // The abstract game and the running system, side by side.
/// let caps = CapacityVector::two_class(50, 1, 50, 10);
/// let bins = run_game(&caps, caps.total(), &GameConfig::default(), 42);
/// assert_eq!(bins.total_balls(), caps.total());
///
/// let scenario = find_scenario("two-class").unwrap();
/// let metrics = SimBuilder::scenario(scenario, 2_000).seed(42).build().run();
/// assert_eq!(metrics.completed + metrics.dropped, 2_000);
/// ```
pub mod prelude {
    pub use bnb_cluster::{
        find_scenario, ArrivalProcess, ArrivalSampler, ChurnConfig, ClusterEvent, ClusterMetrics,
        ClusterServer, ClusterSim, ClusterSpec, Fleet, ReplicaAccumulator, Scenario, Scheduler,
        ShardedClusterSim, Sim, SimBuilder,
    };
    pub use bnb_core::prelude::*;
    pub use bnb_hashring::{
        ByersGame, ChordOverlay, ChurnSimulator, HashRing, MembershipRing, Rendezvous,
    };
    pub use bnb_queueing::{
        Admission, CalendarQueue, EventQueue, EventScheduler, QueueMetrics, QueueSystem,
        RoutingPolicy, Server, SystemConfig,
    };
    pub use bnb_router::{
        FleetReader, FleetSnapshot, FleetView, LoadView, Member, Membership, PlacementEngine,
        PlacementSpec, Router, RouterBuilder, RouterHandle, ServerId,
    };
}
